#include "harness.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <set>
#include <thread>

#include "json.h"
#include "models/model_zoo.h"

namespace olympian::bench {

const core::ModelProfile& ProfileCache::Get(const std::string& model,
                                            int batch) {
  const std::string key = models::ModelKey(model, batch);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto p = std::make_unique<core::ModelProfile>(
        profiler_.ProfileModel(model, batch));
    it = cache_.emplace(key, std::move(p)).first;
  }
  return *it->second;
}

const core::ModelProfile& ProfileCache::GetWithCurve(const std::string& model,
                                                     int batch) {
  const core::ModelProfile& p = Get(model, batch);
  if (p.overhead_q.empty()) {
    profiler_.ComputeOverheadQCurve(
        *cache_.at(models::ModelKey(model, batch)));
  }
  return p;
}

RunOutcome RunBaseline(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients) {
  serving::Experiment exp(server);
  RunOutcome out;
  out.clients = exp.Run(clients);
  out.makespan = exp.makespan();
  out.utilization = exp.utilization();
  return out;
}

namespace {

RunOutcome RunWithScheduler(const serving::ServerOptions& server,
                            const std::vector<serving::ClientSpec>& clients,
                            const std::string& policy, sim::Duration q,
                            ProfileCache* profiles, bool wall_clock) {
  serving::Experiment exp(server);
  core::Scheduler::Options sopts;
  sopts.use_wall_clock = wall_clock;
  sopts.wall_quantum = q;
  core::Scheduler sched(exp.env(), exp.gpu(), core::MakePolicy(policy), sopts);

  if (!wall_clock) {
    std::set<std::pair<std::string, int>> seen;
    for (const auto& c : clients) seen.insert({c.model, c.batch});
    for (const auto& [model, batch] : seen) {
      const core::ModelProfile& p = profiles->Get(model, batch);
      sched.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
    }
  }

  exp.SetHooks(&sched);
  RunOutcome out;
  out.clients = exp.Run(clients);
  out.makespan = exp.makespan();
  out.utilization = exp.utilization();
  out.switches = sched.switches();
  out.quanta = sched.quanta_completed();
  out.quantum_log = sched.quantum_log();
  return out;
}

}  // namespace

RunOutcome RunOlympian(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients,
                       const std::string& policy, sim::Duration q,
                       ProfileCache& profiles) {
  return RunWithScheduler(server, clients, policy, q, &profiles, false);
}

RunOutcome RunCpuTimerAblation(const serving::ServerOptions& server,
                               const std::vector<serving::ClientSpec>& clients,
                               const std::string& policy, sim::Duration q) {
  return RunWithScheduler(server, clients, policy, q, nullptr, true);
}

std::map<gpusim::JobId, QuantumStats> PerJobQuantumStats(
    const RunOutcome& run, std::size_t expected_jobs) {
  std::map<gpusim::JobId, metrics::Series> per_job;
  for (const auto& rec : run.quantum_log) {
    if (rec.active_jobs != expected_jobs) continue;  // only full occupancy
    per_job[rec.job].Add(rec.gpu_duration.micros());
  }
  std::map<gpusim::JobId, QuantumStats> out;
  for (auto& [job, series] : per_job) {
    out[job] = QuantumStats{series.Mean(), series.Stddev(), series.count()};
  }
  return out;
}

std::vector<serving::ClientSpec> HomogeneousClients(const std::string& model,
                                                    int batch, int count,
                                                    int num_batches) {
  return std::vector<serving::ClientSpec>(
      static_cast<std::size_t>(count),
      serving::ClientSpec{
          .model = model, .batch = batch, .num_batches = num_batches});
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s of \"Olympian\", Middleware 2018)\n\n",
              paper_ref.c_str());
}

std::string FmtSeconds(sim::Duration d) {
  return metrics::Table::Num(d.seconds(), 2);
}

void SweepCase::RecordStatuses(
    const std::vector<serving::ClientResult>& clients) {
  int ok = 0, timed_out = 0, rejected = 0, retried = 0, failed = 0;
  for (const auto& c : clients) {
    ok += c.CountStatus(serving::RequestStatus::kOk);
    timed_out += c.CountStatus(serving::RequestStatus::kTimedOut);
    rejected += c.CountStatus(serving::RequestStatus::kRejected);
    retried += c.CountStatus(serving::RequestStatus::kFailedRetried);
    failed += c.CountStatus(serving::RequestStatus::kFailed);
  }
  Set("req_ok", ok);
  Set("req_timed_out", timed_out);
  Set("req_rejected", rejected);
  Set("req_failed_retried", retried);
  Set("req_failed", failed);

  for (const auto& c : clients) {
    if (c.finish_time.seconds() > slo_window_seconds) {
      slo_window_seconds = c.finish_time.seconds();
    }
    for (std::size_t i = 0; i < c.request_status.size(); ++i) {
      metrics::RequestOutcome outcome;
      switch (c.request_status[i]) {
        case serving::RequestStatus::kOk:
          outcome = metrics::RequestOutcome::kSuccess;
          break;
        case serving::RequestStatus::kFailedRetried:
          outcome = metrics::RequestOutcome::kRetriedSuccess;
          break;
        case serving::RequestStatus::kTimedOut:
          outcome = metrics::RequestOutcome::kTimedOut;
          break;
        case serving::RequestStatus::kRejected:
          outcome = metrics::RequestOutcome::kRejected;
          break;
        case serving::RequestStatus::kFailed:
          outcome = metrics::RequestOutcome::kFailed;
          break;
        default:
          outcome = metrics::RequestOutcome::kFailed;
          break;
      }
      const double latency = i < c.request_latency_ms.size()
                                 ? c.request_latency_ms[i]
                                 : 0.0;
      slo.Add(c.model, latency, outcome);
    }
  }
}

namespace {

// max/mean of the per-shard executed-event counts; 1.0 for degenerate
// inputs (no shards, or no events) so artifacts never carry a NaN.
double ShardImbalance(const std::vector<std::uint64_t>& shard_events) {
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (const std::uint64_t e : shard_events) {
    total += e;
    if (e > worst) worst = e;
  }
  if (shard_events.empty() || total == 0) return 1.0;
  return static_cast<double>(worst) * static_cast<double>(shard_events.size()) /
         static_cast<double>(total);
}

}  // namespace

void SweepCase::RecordEngine(const sim::ShardedEngine& engine) {
  engine_shards = engine.shards();
  engine_sync_windows = engine.sync_windows();
  engine_boundary_events = engine.boundary_events();
  engine_hub_instants = engine.hub_instants();
  engine_worker_wakeups = engine.worker_wakeups();
  engine_shard_events.clear();
  engine_shard_events.reserve(engine_shards);
  for (std::size_t k = 0; k < engine_shards; ++k) {
    engine_shard_events.push_back(engine.shard_events(k));
  }
  Set("shards", static_cast<double>(engine_shards));
  Set("sync_windows", static_cast<double>(engine_sync_windows));
  Set("boundary_events", static_cast<double>(engine_boundary_events));
  Set("hub_instants", static_cast<double>(engine_hub_instants));
  Set("worker_wakeups", static_cast<double>(engine_worker_wakeups));
  Set("imbalance", ShardImbalance(engine_shard_events));
}

Json SloJson(const metrics::SloReport& r) {
  Json latency = Json::Object();
  latency.Set("mean_ms", Json::Num(r.mean_ms))
      .Set("p50_ms", Json::Num(r.p50_ms))
      .Set("p95_ms", Json::Num(r.p95_ms))
      .Set("p99_ms", Json::Num(r.p99_ms))
      .Set("p999_ms", Json::Num(r.p999_ms))
      .Set("max_ms", Json::Num(r.max_ms));
  Json per_model = Json::Array();
  for (const auto& m : r.per_model) {
    per_model.Push(Json::Object()
                       .Set("model", Json::Str(m.model))
                       .Set("total", Json::Num(static_cast<double>(m.total)))
                       .Set("succeeded",
                            Json::Num(static_cast<double>(m.succeeded)))
                       .Set("availability", Json::Num(m.availability))
                       .Set("p50_ms", Json::Num(m.p50_ms))
                       .Set("p95_ms", Json::Num(m.p95_ms))
                       .Set("p99_ms", Json::Num(m.p99_ms))
                       .Set("p999_ms", Json::Num(m.p999_ms))
                       .Set("max_ms", Json::Num(m.max_ms))
                       .Set("goodput_rps", Json::Num(m.goodput_rps)));
  }
  Json out = Json::Object();
  out.Set("window_seconds", Json::Num(r.window_seconds))
      .Set("total", Json::Num(static_cast<double>(r.total)))
      .Set("succeeded", Json::Num(static_cast<double>(r.succeeded)))
      .Set("retried_ok", Json::Num(static_cast<double>(r.retried_ok)))
      .Set("timed_out", Json::Num(static_cast<double>(r.timed_out)))
      .Set("rejected", Json::Num(static_cast<double>(r.rejected)))
      .Set("failed", Json::Num(static_cast<double>(r.failed)))
      .Set("availability", Json::Num(r.availability))
      .Set("availability_target", Json::Num(r.availability_target))
      .Set("error_budget_burn", Json::Num(r.error_budget_burn))
      .Set("latency", std::move(latency))
      .Set("goodput_rps", Json::Num(r.goodput_rps))
      .Set("per_model", std::move(per_model));
  return out;
}

namespace {

// Phase map as a JSON object, zero-valued phases skipped (mirrors
// PhaseCollector::WriteBlameJson). Integer nanoseconds survive the double
// round-trip exactly for any run shorter than ~104 days of virtual time.
template <typename T>
Json PhaseMapJson(const std::array<T, metrics::kPhaseCount>& per_phase) {
  Json out = Json::Object();
  for (int i = 0; i < metrics::kPhaseCount; ++i) {
    const T v = per_phase[static_cast<std::size_t>(i)];
    if (v == 0) continue;
    out.Set(metrics::PhaseName(static_cast<metrics::Phase>(i)),
            Json::Num(static_cast<double>(v)));
  }
  return out;
}

}  // namespace

Json BlameJson(const metrics::PhaseCollector& c) {
  Json rows = Json::Array();
  for (const auto& [key, row] : c.rows()) {
    Json row_json = Json::Object();
    row_json.Set("server", Json::Num(static_cast<double>(key.first)))
        .Set("model", Json::Str(key.second))
        .Set("requests", Json::Num(static_cast<double>(row.requests)))
        .Set("violations", Json::Num(static_cast<double>(row.violations)));
    if (row.violations > 0) {
      // Highest dominant count wins, ties toward the lowest phase index —
      // the same rule as PhaseAccount::Dominant.
      int best = 0;
      for (int i = 1; i < metrics::kPhaseCount; ++i) {
        if (row.dominant[static_cast<std::size_t>(i)] >
            row.dominant[static_cast<std::size_t>(best)])
          best = i;
      }
      row_json.Set("dominant_phase",
                   Json::Str(metrics::PhaseName(static_cast<metrics::Phase>(
                       best))));
    }
    row_json.Set("phases_ns", PhaseMapJson(row.total_ns))
        .Set("violation_phases_ns", PhaseMapJson(row.violation_ns));
    if (row.violations > 0) {
      row_json.Set("dominant_counts", PhaseMapJson(row.dominant));
    }
    rows.Push(std::move(row_json));
  }
  Json out = Json::Object();
  out.Set("slo_ms", Json::Num(c.slo_ms()))
      .Set("requests", Json::Num(static_cast<double>(c.requests())))
      .Set("violations", Json::Num(static_cast<double>(c.violations())))
      .Set("phase_sum_mismatches",
           Json::Num(static_cast<double>(c.mismatches())))
      .Set("rows", std::move(rows));
  return out;
}

Json TimelineJson(const metrics::MetricRegistry& registry) {
  Json series = Json::Array();
  for (const auto& [name, labels, ts] : registry.Series()) {
    Json points = Json::Array();
    for (const auto& [t_ns, v] : ts->points()) {
      points.Push(Json::Array()
                      .Push(Json::Num(static_cast<double>(t_ns)))
                      .Push(Json::Num(v)));
    }
    series.Push(Json::Object()
                    .Set("name", Json::Str(name))
                    .Set("labels", Json::Str(labels))
                    .Set("points", std::move(points)));
  }
  Json out = Json::Object();
  out.Set("series", std::move(series));
  return out;
}

Json HistogramJson(const metrics::MetricRegistry::Histogram& h) {
  Json buckets = Json::Array();
  const auto& bounds = h.bounds();
  const auto& counts = h.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    Json le = i < bounds.size() ? Json::Num(bounds[i]) : Json::Str("+Inf");
    buckets.Push(Json::Array()
                     .Push(std::move(le))
                     .Push(Json::Num(static_cast<double>(counts[i]))));
  }
  Json out = Json::Object();
  out.Set("count", Json::Num(static_cast<double>(h.count())))
      .Set("sum", Json::Num(h.sum()))
      .Set("min", Json::Num(h.count() > 0 ? h.min() : 0.0))
      .Set("max", Json::Num(h.count() > 0 ? h.max() : 0.0))
      .Set("p50", Json::Num(h.count() > 0 ? h.Quantile(0.5) : 0.0))
      .Set("p95", Json::Num(h.count() > 0 ? h.Quantile(0.95) : 0.0))
      .Set("p99", Json::Num(h.count() > 0 ? h.Quantile(0.99) : 0.0))
      .Set("buckets", std::move(buckets));
  return out;
}

// --- SweepRunner ------------------------------------------------------------

int SweepRunner::Threads() const {
  int n = 0;
  if (const char* env = std::getenv("OLYMPIAN_BENCH_THREADS")) {
    n = std::atoi(env);
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  const int cases = static_cast<int>(cases_.size());
  return cases > 0 && n > cases ? cases : n;
}

const std::vector<SweepCase>& SweepRunner::RunAll() {
  const std::size_t n = cases_.size();
  results_.assign(n, SweepCase{});
  std::vector<std::exception_ptr> errors(n);

  // Workers pull the next unclaimed case index; results land in the slot
  // for that index, so output order is Add() order regardless of timing.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      results_[i].name = cases_[i].first;
      const auto case_t0 = std::chrono::steady_clock::now();
      try {
        cases_[i].second(results_[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      // Appended last so binaries can index their own metrics from 0. The
      // sum/max ratio of these across cases bounds the achievable parallel
      // speedup on a many-core host.
      results_[i].Set("case_seconds",
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - case_t0)
                          .count());
    }
  };

  const int threads = Threads();
  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);  // first failure in Add() order
  }

  Json cases_json = Json::Array();
  metrics::SloAccumulator merged_slo;
  double merged_window = 0.0;
  // Artifact-level blame table, folded over every case that carried a
  // PhaseCollector. The merged collector inherits the first contributing
  // case's SLO threshold (rows arrive with violations already classified,
  // so the threshold is informational in the merged block).
  std::shared_ptr<metrics::PhaseCollector> merged_phases;
  // Engine counters pooled across cases: shards is the widest partition any
  // case ran with (1 when no case recorded an engine — every artifact still
  // carries the block), windows/boundary events are totals.
  std::uint64_t agg_shards = 1;
  std::uint64_t agg_sync_windows = 0;
  std::uint64_t agg_boundary_events = 0;
  std::uint64_t agg_hub_instants = 0;
  std::uint64_t agg_worker_wakeups = 0;
  std::vector<std::uint64_t> agg_shard_events;
  for (const auto& r : results_) {
    if (r.engine_shards > agg_shards) agg_shards = r.engine_shards;
    agg_sync_windows += r.engine_sync_windows;
    agg_boundary_events += r.engine_boundary_events;
    agg_hub_instants += r.engine_hub_instants;
    agg_worker_wakeups += r.engine_worker_wakeups;
    if (r.engine_shard_events.size() > agg_shard_events.size()) {
      agg_shard_events.resize(r.engine_shard_events.size(), 0);
    }
    for (std::size_t k = 0; k < r.engine_shard_events.size(); ++k) {
      agg_shard_events[k] += r.engine_shard_events[k];
    }
  }
  for (const auto& r : results_) {
    Json metrics = Json::Object();
    for (const auto& [key, value] : r.metrics) {
      metrics.Set(key, Json::Num(value));
    }
    Json case_json = Json::Object();
    case_json.Set("name", Json::Str(r.name)).Set("metrics", std::move(metrics));
    if (!r.slo.empty()) {
      case_json.Set("slo", SloJson(r.slo.Report(r.slo_window_seconds)));
      merged_slo.Merge(r.slo);
      if (r.slo_window_seconds > merged_window) {
        merged_window = r.slo_window_seconds;
      }
    }
    if (r.timeline != nullptr) {
      case_json.Set("timeline", *r.timeline);
    }
    if (r.histograms != nullptr) {
      case_json.Set("histograms", *r.histograms);
    }
    if (r.phases != nullptr) {
      case_json.Set("blame", BlameJson(*r.phases));
      if (merged_phases == nullptr) {
        merged_phases = std::make_shared<metrics::PhaseCollector>(
            metrics::PhaseCollector::Options{.slo_ms = r.phases->slo_ms()});
      }
      merged_phases->MergeFrom(*r.phases);
    }
    cases_json.Push(std::move(case_json));
  }
  Json root = Json::Object();
  root.Set("bench", Json::Str(name_))
      .Set("threads", Json::Num(threads))
      .Set("wall_seconds", Json::Num(wall_seconds_))
      // Artifact-level SLO report: every BENCH_*.json carries one, pooled
      // over all cases that recorded request outcomes (empty-traffic report
      // when none did).
      .Set("slo", SloJson(merged_slo.Report(merged_window)))
      // Artifact-level blame table beside the SLO block: pooled over all
      // cases that accounted phases, an empty table when none did.
      .Set("blame", BlameJson(merged_phases != nullptr
                                  ? *merged_phases
                                  : metrics::PhaseCollector{}))
      .Set("engine", [&] {
        Json shard_events = Json::Array();
        for (const std::uint64_t e : agg_shard_events) {
          shard_events.Push(Json::Num(static_cast<double>(e)));
        }
        return Json::Object()
            .Set("shards", Json::Num(static_cast<double>(agg_shards)))
            .Set("sync_windows",
                 Json::Num(static_cast<double>(agg_sync_windows)))
            .Set("boundary_events",
                 Json::Num(static_cast<double>(agg_boundary_events)))
            .Set("hub_instants",
                 Json::Num(static_cast<double>(agg_hub_instants)))
            .Set("worker_wakeups",
                 Json::Num(static_cast<double>(agg_worker_wakeups)))
            .Set("shard_events", std::move(shard_events))
            .Set("imbalance", Json::Num(ShardImbalance(agg_shard_events)));
      }())
      .Set("cases", std::move(cases_json));
  const std::string path = "BENCH_" + name_ + ".json";
  if (!WriteJsonFile(path, root)) {
    std::fprintf(stderr, "[sweep %s] failed to write %s\n", name_.c_str(),
                 path.c_str());
  }
  std::fprintf(stderr, "[sweep %s] %zu cases on %d thread%s in %.2fs -> %s\n",
               name_.c_str(), n, threads, threads == 1 ? "" : "s",
               wall_seconds_, path.c_str());
  return results_;
}

}  // namespace olympian::bench
