// Failover sweep: request availability under device outages, with the
// health-aware failover subsystem on vs off, at matched fault schedules.
//
// Two devices, four tenants (two homed per device), and an escalating
// number of device resets with real outages. Without failover a request
// pinned to a dead device burns its retry budget and fails; with failover
// the victims re-admit to the surviving replica (paying reload + warm-up
// on the virtual clock) and recovery readmits the device after the outage.
//
// Expected shape: availability — the (ok + retried) fraction — stays at
// 1.0 with failover across every fault rate and decays without it; the
// failover column of the makespan shows the migration + recovery cost.
// Per-case scalars land in BENCH_failover.json.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace olympian;

namespace {

// `resets` device outages, alternating across both devices, spaced so they
// never overlap (at least one replica always survives).
fault::FaultPlan OutagePlan(int resets) {
  fault::FaultPlan plan;
  for (int k = 0; k < resets; ++k) {
    plan.DeviceReset(sim::TimePoint() + sim::Duration::Millis(300 + 700 * k),
                     sim::Duration::Millis(400),
                     /*gpu_index=*/static_cast<std::size_t>(k % 2));
  }
  return plan;
}

std::vector<serving::ClientSpec> Tenants() {
  std::vector<serving::ClientSpec> clients;
  for (int i = 0; i < 4; ++i) {
    // Alternating models so a failover must instantiate the victim's model
    // on the surviving device (reload + warm-up are part of the cost).
    clients.push_back(serving::ClientSpec{
        .model = i % 2 == 0 ? "resnet-152" : "googlenet",
        .batch = 20,
        .num_batches = 8});
  }
  return clients;
}

}  // namespace

int main() {
  bench::PrintHeader("Availability under device outages: failover on vs off",
                     "robustness extension");

  const int kRates[] = {0, 1, 2, 4};
  bench::SweepRunner sweep("failover");
  for (const int resets : kRates) {
    for (const bool failover : {false, true}) {
      const std::string name = "resets-" + std::to_string(resets) +
                               (failover ? "-failover" : "-static");
      sweep.Add(name, [resets, failover](bench::SweepCase& out) {
        serving::ServerOptions opts;
        opts.seed = 83;
        opts.num_gpus = 2;
        opts.degradation.retry.max_retries = 3;
        opts.faults = OutagePlan(resets);
        opts.failover.enabled = failover;
        // Live observability: sample device health / utilization / queue
        // depth on the virtual clock and embed the timeline in the
        // artifact, so an outage is visible as a dip in the series.
        metrics::MetricRegistry registry;
        opts.observability.registry = &registry;
        opts.observability.sample_interval = sim::Duration::Millis(50);
        serving::Experiment exp(opts);
        const auto results = exp.Run(Tenants());
        out.timeline =
            std::make_shared<bench::Json>(bench::TimelineJson(registry));

        int total = 0, served = 0;
        metrics::Series latency;
        for (const auto& r : results) {
          total += static_cast<int>(r.request_status.size());
          served += r.CountStatus(serving::RequestStatus::kOk) +
                    r.CountStatus(serving::RequestStatus::kFailedRetried);
          for (const double ms : r.request_latency_ms) latency.Add(ms);
        }
        out.Set("availability", total == 0 ? 0.0
                                           : static_cast<double>(served) /
                                                 static_cast<double>(total));
        out.Set("p99_ms", latency.Percentile(99));
        out.Set("makespan_s", exp.makespan().seconds());
        out.Set("failed_over",
                static_cast<double>(exp.counters().requests_failed_over));
        out.Set("down_events",
                static_cast<double>(exp.counters().device_down_events));
        // MTTR as a distribution, not just a mean: every completed
        // recovery's down -> readmitted interval feeds a log-bucketed
        // histogram, so the artifact carries per-incident repair times
        // (p95 as a scalar, full buckets under "histograms").
        double mttr_ms = 0.0;
        metrics::MetricRegistry::Histogram mttr_hist;
        if (exp.health() != nullptr) {
          sim::Duration mttr;
          int downed = 0;
          for (std::size_t g = 0; g < exp.num_gpus(); ++g) {
            const auto& stats = exp.health()->stats(g);
            if (stats.readmissions > 0) {
              mttr += exp.health()->Mttr(g);
              ++downed;
            }
            for (const sim::Duration d : stats.mttr_incidents) {
              mttr_hist.Observe(d.millis());
            }
          }
          if (downed > 0) mttr_ms = (mttr / downed).millis();
        }
        out.Set("mttr_ms", mttr_ms);
        out.Set("mttr_p95_ms",
                mttr_hist.count() > 0 ? mttr_hist.Quantile(0.95) : 0.0);
        out.histograms = std::make_shared<bench::Json>(
            bench::Json::Object().Set("mttr_ms",
                                      bench::HistogramJson(mttr_hist)));
        out.RecordStatuses(results);
      });
    }
  }

  const auto& results = sweep.RunAll();
  metrics::Table t({"Outages", "Failover", "Availability", "p99 (ms)",
                    "Makespan (s)", "Failed over", "MTTR (ms)",
                    "MTTR p95 (ms)"});
  std::size_t idx = 0;
  for (const int resets : kRates) {
    double avail[2] = {0.0, 0.0};
    for (const bool failover : {false, true}) {
      const auto& r = results[idx++];
      avail[failover ? 1 : 0] = r.metrics[0].second;
      t.AddRow({metrics::Table::Num(resets, 0), failover ? "on" : "off",
                metrics::Table::Pct(r.metrics[0].second),
                metrics::Table::Num(r.metrics[1].second, 0),
                metrics::Table::Num(r.metrics[2].second, 2),
                metrics::Table::Num(r.metrics[3].second, 0),
                metrics::Table::Num(r.metrics[5].second, 0),
                metrics::Table::Num(r.metrics[6].second, 0)});
    }
    if (resets > 0 && avail[1] <= avail[0]) {
      std::cout << "WARNING: failover did not improve availability at "
                << resets << " outages\n";
    }
  }
  t.Print(std::cout);
  std::cout << "\n2 GPUs, 4 tenants (2 per device), 8 requests each, 400ms\n"
               "outages alternating across devices. Availability = fraction\n"
               "of requests ending kOk or kFailedRetried.\n";
  return 0;
}
