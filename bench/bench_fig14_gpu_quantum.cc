// Reproduces Figure 14: average GPU duration per quantum for the
// heterogeneous workload (5 Inception + 5 ResNet-152). Every client should
// receive a nearly identical share close to the profiler-predicted Q.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Average GPU duration per quantum (heterogeneous)",
                     "Figure 14");

  bench::ProfileCache profiles;
  const auto& pi = profiles.GetWithCurve("inception-v4", 150);
  const auto& pr = profiles.GetWithCurve("resnet-152", 100);
  const auto q = core::Profiler::SelectQ({&pi, &pr}, 0.025);
  std::cout << "Profiler-predicted Q: " << metrics::Table::Num(q.micros(), 0)
            << " us (paper: 1190 us)\n";

  std::vector<serving::ClientSpec> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(
        {.model = "inception-v4", .batch = 150, .num_batches = 10});
  }
  for (int i = 0; i < 5; ++i) {
    clients.push_back(
        {.model = "resnet-152", .batch = 100, .num_batches = 10});
  }

  serving::ServerOptions opts;
  opts.seed = 9;
  const auto base = bench::RunBaseline(opts, clients);
  const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);
  const auto stats = bench::PerJobQuantumStats(oly, clients.size());

  metrics::Table t({"Client id", "Model", "Mean GPU dur/quantum (us)",
                    "Stddev", "Quanta"});
  metrics::Series means;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto it = stats.find(static_cast<gpusim::JobId>(i));
    if (it == stats.end()) continue;
    means.Add(it->second.mean_us);
    t.AddRow({std::to_string(i), clients[i].model,
              metrics::Table::Num(it->second.mean_us, 0),
              metrics::Table::Pct(it->second.stddev_us /
                                  std::max(1.0, it->second.mean_us)),
              std::to_string(it->second.count)});
  }
  t.Print(std::cout);

  std::cout << "\nPer-client means: "
            << metrics::Table::Num(means.Min(), 0) << " - "
            << metrics::Table::Num(means.Max(), 0) << " us vs predicted Q "
            << metrics::Table::Num(q.micros(), 0) << " us\n"
            << "Observed overhead vs TF-Serving: "
            << metrics::Table::Pct((oly.makespan - base.makespan).Ratio(base.makespan))
            << " (paper observed 2.4% against a 2.5% target)\n"
            << "Expected shape: paper measures 1084-1257 us against a\n"
               "predicted 1190 us, stddev 4.9%-10.1% per client.\n";
  return 0;
}
