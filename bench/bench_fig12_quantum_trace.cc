// Reproduces Figure 12: the durations of successive scheduling intervals
// under Olympian fair sharing (paper: average 1.8 ms, individual intervals
// vary widely because quanta complete on cost accumulation, not wall time).

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Duration of successive scheduling intervals",
                     "Figure 12");

  bench::ProfileCache profiles;
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  serving::ServerOptions opts;
  opts.seed = 5;
  const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);

  metrics::Series wall_ms;
  for (const auto& rec : oly.quantum_log) {
    wall_ms.Add((rec.end - rec.start).millis());
  }

  // A sample of successive intervals, then the distribution summary.
  metrics::Table t({"Interval id", "Duration (ms)"});
  const std::size_t start = oly.quantum_log.size() / 2;
  for (std::size_t i = start; i < start + 20 && i < oly.quantum_log.size();
       ++i) {
    const auto& rec = oly.quantum_log[i];
    t.AddRow({std::to_string(i - start),
              metrics::Table::Num((rec.end - rec.start).millis(), 3)});
  }
  t.Print(std::cout);

  std::cout << "\nIntervals: " << wall_ms.count()
            << "  mean: " << metrics::Table::Num(wall_ms.Mean(), 2)
            << " ms  p10: " << metrics::Table::Num(wall_ms.Percentile(10), 2)
            << " ms  p90: " << metrics::Table::Num(wall_ms.Percentile(90), 2)
            << " ms  max: " << metrics::Table::Num(wall_ms.Max(), 2) << " ms\n"
            << "Expected shape: paper reports a 1.8 ms average with wide\n"
               "variation across individual intervals.\n";
  return 0;
}
