// Reproduces Figure 4: the CDF of per-node execution durations for one
// Inception job at two batch sizes. Short node durations are what make
// node-granularity switching cheap.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

// Uncontended execution duration of each GPU node's kernel on the reference
// device (the quantity Figure 4 plots).
metrics::Series NodeDurationsUs(const graph::Graph& g, int batch) {
  const auto spec = gpusim::GpuSpec::Gtx1080Ti();
  metrics::Series s;
  for (const auto& n : g.nodes()) {
    if (!n.is_gpu()) continue;
    const auto blocks = n.BlocksFor(batch);
    const auto waves =
        (blocks + spec.total_block_slots() - 1) / spec.total_block_slots();
    s.Add(n.block_work.micros() * static_cast<double>(waves) +
          n.cpu_time.micros());
  }
  return s;
}

}  // namespace

int main() {
  bench::PrintHeader("Node duration CDF, Inception, batch 10 vs 100",
                     "Figure 4");

  const graph::Graph g = models::BuildModel(models::GetModel("inception-v4"));
  auto d10 = NodeDurationsUs(g, 10);
  auto d100 = NodeDurationsUs(g, 100);

  metrics::Table t({"Node duration (us)", "CDF batch-10", "CDF batch-100"});
  for (double x : {5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
                   5000.0, 10000.0}) {
    t.AddRow({metrics::Table::Num(x, 0), metrics::Table::Num(d10.CdfAt(x), 3),
              metrics::Table::Num(d100.CdfAt(x), 3)});
  }
  t.Print(std::cout);
  std::cout << "\nbatch-100: " << metrics::Table::Pct(d100.CdfAt(30.0))
            << " of GPU nodes under 30us, " << metrics::Table::Pct(d100.CdfAt(1000.0))
            << " under 1ms (paper: >80% under ~20us, >90% under 1ms).\n";
  return 0;
}
