// Reproduces Figure 6: the overhead of running Tensorflow's online cost
// profiler — the reason Olympian profiles offline. One client, one batch
// run per model, profiler off vs on.

#include <iostream>

#include "harness.h"
#include "models/model_zoo.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Online cost-profiler overhead", "Figure 6");

  metrics::Table t({"Model", "Off (s)", "On (s)", "Overhead"});
  double min_ov = 1e9, max_ov = 0;
  for (const models::ModelSpec& spec : models::AllModels()) {
    serving::ServerOptions off;
    off.seed = 11;
    serving::ServerOptions on = off;
    on.executor.online_cost_profiler = true;

    const std::vector<serving::ClientSpec> clients{
        {.model = spec.name, .batch = spec.paper_batch, .num_batches = 2}};
    const auto r_off = bench::RunBaseline(off, clients);
    const auto r_on = bench::RunBaseline(on, clients);
    const double ov = (r_on.makespan - r_off.makespan).Ratio(r_off.makespan);
    min_ov = std::min(min_ov, ov);
    max_ov = std::max(max_ov, ov);
    t.AddRow({spec.name, bench::FmtSeconds(r_off.makespan),
              bench::FmtSeconds(r_on.makespan), metrics::Table::Pct(ov)});
  }
  t.Print(std::cout);
  std::cout << "\nOnline profiling inflates runtimes by "
            << metrics::Table::Pct(min_ov) << " - " << metrics::Table::Pct(max_ov)
            << " (paper: 21% - 29%), which is why Olympian profiles offline.\n";
  return 0;
}
