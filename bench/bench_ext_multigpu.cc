// Extension (paper future work, §7): multiple GPUs in one server. Clients
// are placed round-robin across devices; each device runs its own driver
// and its own Olympian scheduler (a token is a per-device grant).
//
// 20 Inception clients on 1 vs 2 GPUs, stock TF-Serving vs per-device
// Olympian fair sharing. The three configurations are independent runs,
// fanned across OS threads via SweepRunner; scalars land in
// BENCH_ext_multigpu.json.

#include <iostream>
#include <memory>

#include "harness.h"

using namespace olympian;

namespace {

void Report(bench::SweepCase& out,
            const std::vector<serving::ClientResult>& results,
            sim::Duration makespan) {
  metrics::Series per_gpu_cv[2];
  metrics::Series all;
  for (const auto& r : results) {
    all.Add(r.finish_time.seconds());
    per_gpu_cv[r.gpu_index % 2].Add(r.finish_time.seconds());
  }
  out.Set("makespan_s", makespan.seconds());
  out.Set("finish_min_s", all.Min());
  out.Set("finish_max_s", all.Max());
  if (!per_gpu_cv[1].empty()) {
    out.Set("gpu0_cv", per_gpu_cv[0].Cv());
    out.Set("gpu1_cv", per_gpu_cv[1].Cv());
  }
  out.RecordStatuses(results);
}

}  // namespace

int main() {
  bench::PrintHeader("Multi-GPU serving (extension)", "paper §7 future work");

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 20, 5);
  bench::SweepRunner sweep("ext_multigpu");

  sweep.Add("1 GPU, TF-Serving   ", [&clients](bench::SweepCase& out) {
    serving::ServerOptions opts;
    opts.seed = 73;
    serving::Experiment exp(opts);
    const auto r = exp.Run(clients);
    Report(out, r, exp.makespan());
  });
  sweep.Add("2 GPUs, TF-Serving  ", [&clients](bench::SweepCase& out) {
    serving::ServerOptions opts;
    opts.seed = 73;
    opts.num_gpus = 2;
    serving::Experiment exp(opts);
    const auto r = exp.Run(clients);
    Report(out, r, exp.makespan());
  });
  sweep.Add("2 GPUs, Olympian    ", [&clients](bench::SweepCase& out) {
    bench::ProfileCache profiles;
    const auto& prof = profiles.Get("inception-v4", 100);
    const auto q = sim::Duration::Micros(1600);
    serving::ServerOptions opts;
    opts.seed = 73;
    opts.num_gpus = 2;
    serving::Experiment exp(opts);
    core::Scheduler sched0(exp.env(), exp.gpu(0),
                           std::make_unique<core::FairPolicy>());
    core::Scheduler sched1(exp.env(), exp.gpu(1),
                           std::make_unique<core::FairPolicy>());
    for (core::Scheduler* s : {&sched0, &sched1}) {
      s->SetProfile(prof.key, &prof.cost,
                    core::Profiler::ThresholdFor(prof, q));
    }
    exp.SetGpuHooks(0, &sched0);
    exp.SetGpuHooks(1, &sched1);
    const auto r = exp.Run(clients);
    Report(out, r, exp.makespan());
  });

  for (const auto& r : sweep.RunAll()) {
    std::cout << "  " << r.name << ": makespan "
              << metrics::Table::Num(r.metrics[0].second, 2)
              << " s, finishes "
              << metrics::Table::Num(r.metrics[1].second, 2) << " - "
              << metrics::Table::Num(r.metrics[2].second, 2) << " s";
    if (r.metrics.size() > 3 && r.metrics[3].first == "gpu0_cv") {
      std::cout << "  (per-device CV "
                << metrics::Table::Pct(r.metrics[3].second) << " / "
                << metrics::Table::Pct(r.metrics[4].second) << ")";
    }
    std::cout << "\n";
  }

  std::cout << "\nExpected shape: two devices halve the makespan; per-device\n"
               "Olympian schedulers equalize finish times within each device\n"
               "(per-device CV ~0) while stock TF-Serving stays spread.\n";
  return 0;
}
