// Extension (paper future work, §7): multiple GPUs in one server. Clients
// are placed round-robin across devices; each device runs its own driver
// and its own Olympian scheduler (a token is a per-device grant).
//
// 20 Inception clients on 1 vs 2 GPUs, stock TF-Serving vs per-device
// Olympian fair sharing.

#include <iostream>
#include <memory>

#include "harness.h"

using namespace olympian;

namespace {

void Report(const char* label,
            const std::vector<serving::ClientResult>& results,
            sim::Duration makespan) {
  metrics::Series per_gpu_cv[2];
  metrics::Series all;
  for (const auto& r : results) {
    all.Add(r.finish_time.seconds());
    per_gpu_cv[r.gpu_index % 2].Add(r.finish_time.seconds());
  }
  std::cout << "  " << label << ": makespan "
            << metrics::Table::Num(makespan.seconds(), 2) << " s, finishes "
            << metrics::Table::Num(all.Min(), 2) << " - "
            << metrics::Table::Num(all.Max(), 2) << " s";
  if (!per_gpu_cv[1].empty()) {
    std::cout << "  (per-device CV " << metrics::Table::Pct(per_gpu_cv[0].Cv())
              << " / " << metrics::Table::Pct(per_gpu_cv[1].Cv()) << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::PrintHeader("Multi-GPU serving (extension)", "paper §7 future work");

  bench::ProfileCache profiles;
  const auto& prof = profiles.Get("inception-v4", 100);
  const auto q = sim::Duration::Micros(1600);
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 20, 5);

  // --- one GPU ------------------------------------------------------------
  {
    serving::ServerOptions opts;
    opts.seed = 73;
    serving::Experiment exp(opts);
    const auto r = exp.Run(clients);
    Report("1 GPU, TF-Serving   ", r, exp.makespan());
  }
  // --- two GPUs, stock ------------------------------------------------------
  {
    serving::ServerOptions opts;
    opts.seed = 73;
    opts.num_gpus = 2;
    serving::Experiment exp(opts);
    const auto r = exp.Run(clients);
    Report("2 GPUs, TF-Serving  ", r, exp.makespan());
  }
  // --- two GPUs, Olympian fair (one scheduler per device) -----------------
  {
    serving::ServerOptions opts;
    opts.seed = 73;
    opts.num_gpus = 2;
    serving::Experiment exp(opts);
    core::Scheduler sched0(exp.env(), exp.gpu(0),
                           std::make_unique<core::FairPolicy>());
    core::Scheduler sched1(exp.env(), exp.gpu(1),
                           std::make_unique<core::FairPolicy>());
    for (core::Scheduler* s : {&sched0, &sched1}) {
      s->SetProfile(prof.key, &prof.cost,
                    core::Profiler::ThresholdFor(prof, q));
    }
    exp.SetGpuHooks(0, &sched0);
    exp.SetGpuHooks(1, &sched1);
    const auto r = exp.Run(clients);
    Report("2 GPUs, Olympian    ", r, exp.makespan());
  }

  std::cout << "\nExpected shape: two devices halve the makespan; per-device\n"
               "Olympian schedulers equalize finish times within each device\n"
               "(per-device CV ~0) while stock TF-Serving stays spread.\n";
  return 0;
}
