#pragma once

// Shared harness for the per-figure/table bench binaries. Each binary
// regenerates the rows/series of one paper table or figure; this header
// provides the common plumbing: profiling with caching, building Olympian
// experiments, and result summaries.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "json.h"
#include "metrics/phase_account.h"
#include "metrics/registry.h"
#include "metrics/slo.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "serving/server.h"
#include "sim/shard.h"

namespace olympian::bench {

// Profiles (model, batch) pairs once and memoizes them for the binary's
// lifetime. Overhead-Q curves are computed lazily on first request.
class ProfileCache {
 public:
  explicit ProfileCache(core::ProfilerOptions opts = {}) : profiler_(opts) {}

  const core::ModelProfile& Get(const std::string& model, int batch);
  const core::ModelProfile& GetWithCurve(const std::string& model, int batch);
  const core::Profiler& profiler() const { return profiler_; }

 private:
  core::Profiler profiler_;
  std::map<std::string, std::unique_ptr<core::ModelProfile>> cache_;
};

// Outcome of one workload run (either system).
struct RunOutcome {
  std::vector<serving::ClientResult> clients;
  sim::Duration makespan;
  double utilization = 0.0;
  // Olympian-only:
  std::uint64_t switches = 0;
  std::uint64_t quanta = 0;
  std::vector<core::Scheduler::QuantumRecord> quantum_log;
};

// Stock TF-Serving run.
RunOutcome RunBaseline(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients);

// Olympian run: installs profiles for every (model,batch) in the workload,
// computes thresholds from `q`, and applies the named policy
// ("fair" | "weighted-fair" | "priority").
RunOutcome RunOlympian(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients,
                       const std::string& policy, sim::Duration q,
                       ProfileCache& profiles);

// Figure 19 ablation: Olympian's mechanism with a plain CPU-timer quantum.
RunOutcome RunCpuTimerAblation(const serving::ServerOptions& server,
                               const std::vector<serving::ClientSpec>& clients,
                               const std::string& policy, sim::Duration q);

// Mean GPU-duration-per-quantum per job, over quanta recorded while all
// `expected_jobs` jobs were active (how the paper measures Figures 14/16).
struct QuantumStats {
  double mean_us = 0.0;
  double stddev_us = 0.0;
  std::size_t count = 0;
};
std::map<gpusim::JobId, QuantumStats> PerJobQuantumStats(
    const RunOutcome& run, std::size_t expected_jobs);

// N identical clients of one model (the paper's default workload shape).
std::vector<serving::ClientSpec> HomogeneousClients(const std::string& model,
                                                    int batch, int count,
                                                    int num_batches = 10);

// Pretty-print helpers shared by the binaries.
void PrintHeader(const std::string& title, const std::string& paper_ref);
std::string FmtSeconds(sim::Duration d);

// --- parallel sweeps --------------------------------------------------------

// One sweep case's machine-readable result: a named, ordered list of scalar
// metrics. Cases may additionally publish richer data (client vectors,
// profiles) through slots captured by the case lambda; the runner itself
// only sees these metrics.
struct SweepCase {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
  // SLO observations collected by RecordStatuses; folded into this case's
  // "slo" block and merged into the artifact-level report by RunAll().
  metrics::SloAccumulator slo;
  double slo_window_seconds = 0.0;
  // Optional sampler timeline (see TimelineJson); embedded into the case's
  // JSON when set. shared_ptr keeps SweepCase copyable for the runner.
  std::shared_ptr<Json> timeline;
  // Optional named distributions (see HistogramJson), e.g. per-incident
  // MTTR: an object mapping name -> histogram block, embedded as
  // "histograms" in the case's JSON when set.
  std::shared_ptr<Json> histograms;
  // Optional latency-anatomy blame table: cases that ran with a
  // metrics::PhaseCollector park it here; RunAll() embeds it as "blame" in
  // the case's JSON and folds every case's rows into the artifact-level
  // blame block stamped beside "slo" in every BENCH_*.json.
  std::shared_ptr<metrics::PhaseCollector> phases;
  void Set(std::string key, double v) {
    metrics.emplace_back(std::move(key), v);
  }
  // Per-status request summary (kOk/kTimedOut/kRejected/kFailedRetried/
  // kFailed counts across all clients) — call from every case that ran a
  // serving workload so each BENCH_*.json carries the request outcomes.
  // Also feeds every request (model, latency, outcome) into `slo` and
  // widens `slo_window_seconds` to the latest client finish time.
  void RecordStatuses(const std::vector<serving::ClientResult>& clients);
  // Sharded-engine execution counters (see sim/shard.h) — call from every
  // case that ran a cluster workload. Adds shards / sync_windows /
  // boundary_events / hub_instants / worker_wakeups / imbalance metrics to
  // the case and feeds the artifact-level "engine" block RunAll() stamps
  // into every BENCH_*.json (shards: max across cases, defaulting to 1;
  // windows/boundary events/instants/wakeups: sums; shard_events:
  // element-wise sums; imbalance: max/mean of the pooled per-shard counts).
  // Imbalance makes adaptive vs. static assignment visible in artifacts:
  // 1.0 is a perfect packing, N means the busiest shard carries N times the
  // mean event load.
  void RecordEngine(const sim::ShardedEngine& engine);
  std::uint64_t engine_shards = 0;  // 0 until RecordEngine is called
  std::uint64_t engine_sync_windows = 0;
  std::uint64_t engine_boundary_events = 0;
  std::uint64_t engine_hub_instants = 0;
  std::uint64_t engine_worker_wakeups = 0;
  std::vector<std::uint64_t> engine_shard_events;
};

// JSON block for an SLO report; attached per case and at artifact top level
// by SweepRunner::RunAll, and reusable by custom emitters.
Json SloJson(const metrics::SloReport& report);

// JSON block for a PhaseCollector's tail-blame table — same shape as
// PhaseCollector::WriteBlameJson (slo_ms, requests, violations,
// phase_sum_mismatches, rows with integer-nanosecond phase maps), built as
// a bench::Json so it can ride inside BENCH_*.json artifacts.
Json BlameJson(const metrics::PhaseCollector& collector);

// JSON block for a registry's sampled time series (the compact timeline the
// virtual-clock sampler produces): {"series":[{name, labels, points}...]}.
Json TimelineJson(const metrics::MetricRegistry& registry);

// JSON block for one log-bucketed histogram: count/sum/min/max, p50/p95/p99,
// and the non-empty buckets as [upper_bound, count] pairs (the overflow
// bucket's bound rendered as the string "+Inf"). Gives BENCH_*.json the
// full distribution behind a scalar like mttr_ms, not just its mean.
Json HistogramJson(const metrics::MetricRegistry::Histogram& h);

// Fans independent (config, seed) runs across OS threads.
//
// Each simulation is single-threaded and a pure function of its inputs, so a
// sweep of independent runs parallelizes trivially — PROVIDED each case
// constructs everything it touches (Environment, Experiment, ProfileCache,
// Profiler) inside its own callback. Nothing in src/ has mutable global
// state, and the coroutine frame pool is thread-local, so cases never
// contend. ProfileCache is NOT thread-safe: never share one across cases.
//
// Results are reported in Add() order no matter which thread finishes when,
// and each run's simulated outputs are bit-identical to a serial run (the
// golden determinism test pins this for the underlying sim). If any case
// throws, the first error in Add() order is rethrown after the sweep drains.
//
// RunAll() also writes a BENCH_<name>.json artifact with every case's
// metrics, for machine consumption by CI and plotting scripts.
class SweepRunner {
 public:
  // `name` keys the artifact: BENCH_<name>.json in the working directory.
  explicit SweepRunner(std::string name) : name_(std::move(name)) {}

  // Enqueue a case. `fn` runs on a worker thread: it must create every
  // object it uses (no shared ProfileCache!) and write only to `out` and to
  // per-case slots it exclusively owns.
  void Add(std::string case_name, std::function<void(SweepCase& out)> fn) {
    cases_.emplace_back(std::move(case_name), std::move(fn));
  }

  // Runs every queued case across `Threads()` workers, writes the JSON
  // artifact, and prints a one-line timing summary to stderr. Returns the
  // results in Add() order.
  const std::vector<SweepCase>& RunAll();

  const std::vector<SweepCase>& results() const { return results_; }
  double wall_seconds() const { return wall_seconds_; }

  // Worker count: OLYMPIAN_BENCH_THREADS if set (min 1), else the hardware
  // concurrency, capped at the number of queued cases.
  int Threads() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::function<void(SweepCase&)>>> cases_;
  std::vector<SweepCase> results_;
  double wall_seconds_ = 0.0;
};

}  // namespace olympian::bench
