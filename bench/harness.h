#pragma once

// Shared harness for the per-figure/table bench binaries. Each binary
// regenerates the rows/series of one paper table or figure; this header
// provides the common plumbing: profiling with caching, building Olympian
// experiments, and result summaries.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "serving/server.h"

namespace olympian::bench {

// Profiles (model, batch) pairs once and memoizes them for the binary's
// lifetime. Overhead-Q curves are computed lazily on first request.
class ProfileCache {
 public:
  explicit ProfileCache(core::ProfilerOptions opts = {}) : profiler_(opts) {}

  const core::ModelProfile& Get(const std::string& model, int batch);
  const core::ModelProfile& GetWithCurve(const std::string& model, int batch);
  const core::Profiler& profiler() const { return profiler_; }

 private:
  core::Profiler profiler_;
  std::map<std::string, std::unique_ptr<core::ModelProfile>> cache_;
};

// Outcome of one workload run (either system).
struct RunOutcome {
  std::vector<serving::ClientResult> clients;
  sim::Duration makespan;
  double utilization = 0.0;
  // Olympian-only:
  std::uint64_t switches = 0;
  std::uint64_t quanta = 0;
  std::vector<core::Scheduler::QuantumRecord> quantum_log;
};

// Stock TF-Serving run.
RunOutcome RunBaseline(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients);

// Olympian run: installs profiles for every (model,batch) in the workload,
// computes thresholds from `q`, and applies the named policy
// ("fair" | "weighted-fair" | "priority").
RunOutcome RunOlympian(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients,
                       const std::string& policy, sim::Duration q,
                       ProfileCache& profiles);

// Figure 19 ablation: Olympian's mechanism with a plain CPU-timer quantum.
RunOutcome RunCpuTimerAblation(const serving::ServerOptions& server,
                               const std::vector<serving::ClientSpec>& clients,
                               const std::string& policy, sim::Duration q);

// Mean GPU-duration-per-quantum per job, over quanta recorded while all
// `expected_jobs` jobs were active (how the paper measures Figures 14/16).
struct QuantumStats {
  double mean_us = 0.0;
  double stddev_us = 0.0;
  std::size_t count = 0;
};
std::map<gpusim::JobId, QuantumStats> PerJobQuantumStats(
    const RunOutcome& run, std::size_t expected_jobs);

// N identical clients of one model (the paper's default workload shape).
std::vector<serving::ClientSpec> HomogeneousClients(const std::string& model,
                                                    int batch, int count,
                                                    int num_batches = 10);

// Pretty-print helpers shared by the binaries.
void PrintHeader(const std::string& title, const std::string& paper_ref);
std::string FmtSeconds(sim::Duration d);

}  // namespace olympian::bench
