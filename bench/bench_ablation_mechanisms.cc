// Ablations of the mechanisms DESIGN.md calls out, beyond the paper's own
// Figure-19 ablation:
//
//   1. Driver channel bias off  -> stock TF-Serving's finish-time spread
//      collapses (it is the arbitration bias that models Figure 3's
//      unpredictability).
//   2. Overflow charging off    -> per-quantum GPU durations inflate past
//      the predicted Q (the paper's Figure 15 accounting is what keeps
//      quanta honest).
//   3. Resume-latency sweep     -> the per-switch wake-up cost is the knob
//      behind the Overhead-Q shape (Figure 8).
//
// All eleven configurations are independent runs; they fan out across OS
// threads via one SweepRunner and the three tables are assembled from the
// ordered results. Scalars land in BENCH_ablation_mechanisms.json.

#include <iostream>
#include <memory>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Mechanism ablations", "DESIGN.md design-decision list");
  bench::SweepRunner sweep("ablation_mechanisms");

  // --- 1. driver channel bias (Figure 3 mechanism) ------------------------
  const double sigmas[] = {0.35, 0.15, 0.0};
  for (double sigma : sigmas) {
    sweep.Add("bias-" + metrics::Table::Num(sigma, 2),
              [sigma](bench::SweepCase& out) {
                const auto clients =
                    bench::HomogeneousClients("inception-v4", 100, 10, 5);
                serving::ServerOptions opts;
                opts.seed = 3;
                opts.gpu.arbitration_bias_sigma = sigma;
                const auto r = bench::RunBaseline(opts, clients);
                metrics::Series f;
                for (const auto& c : r.clients) f.Add(c.finish_time.seconds());
                out.Set("finish_min_s", f.Min());
                out.Set("finish_max_s", f.Max());
                out.Set("cv", f.Cv());
                out.RecordStatuses(r.clients);
              });
  }

  // --- 2. overflow cost charging (Figure 15 mechanism) --------------------
  for (bool charge : {true, false}) {
    sweep.Add(charge ? "overflow-charged" : "overflow-uncharged",
              [charge](bench::SweepCase& out) {
                std::vector<serving::ClientSpec> clients;
                for (int i = 0; i < 3; ++i) {
                  clients.push_back({.model = "inception-v4",
                                     .batch = 100,
                                     .num_batches = 5});
                }
                for (int i = 0; i < 3; ++i) {
                  clients.push_back(
                      {.model = "vgg16", .batch = 120, .num_batches = 5});
                }
                const auto q = sim::Duration::Micros(1600);
                bench::ProfileCache profiles;
                serving::ServerOptions opts;
                opts.seed = 3;
                serving::Experiment exp(opts);
                core::Scheduler::Options sopts;
                sopts.charge_overflow = charge;
                core::Scheduler sched(exp.env(), exp.gpu(),
                                      std::make_unique<core::FairPolicy>(),
                                      sopts);
                for (const char* m : {"inception-v4", "vgg16"}) {
                  const auto& p =
                      profiles.Get(m, m == std::string("vgg16") ? 120 : 100);
                  sched.SetProfile(p.key, &p.cost,
                                   core::Profiler::ThresholdFor(p, q));
                }
                exp.SetHooks(&sched);
                const auto rr = exp.Run(clients);
                bench::RunOutcome run;
                run.quantum_log = sched.quantum_log();
                const auto stats =
                    bench::PerJobQuantumStats(run, clients.size());
                metrics::Series means;
                for (const auto& [job, st] : stats) means.Add(st.mean_us);
                out.Set("min_mean_quantum_us", means.Min());
                out.Set("max_mean_quantum_us", means.Max());
                out.Set("predicted_q_us", q.micros());
                out.RecordStatuses(rr);
              });
  }

  // --- 3. gang resume latency (Figure 8 mechanism) ------------------------
  const int latencies[] = {0, 20, 40, 80, 160};
  sweep.Add("resume-baseline", [](bench::SweepCase& out) {
    const auto clients = bench::HomogeneousClients("inception-v4", 100, 2, 3);
    serving::ServerOptions opts;
    opts.seed = 3;
    const auto run = bench::RunBaseline(opts, clients);
    out.Set("makespan_s", run.makespan.seconds());
    out.RecordStatuses(run.clients);
  });
  for (int lat : latencies) {
    sweep.Add("resume-" + std::to_string(lat) + "us",
              [lat](bench::SweepCase& out) {
                const auto clients =
                    bench::HomogeneousClients("inception-v4", 100, 2, 3);
                const auto q = sim::Duration::Micros(800);
                bench::ProfileCache profiles;
                serving::ServerOptions opts;
                opts.seed = 3;
                serving::Experiment exp(opts);
                core::Scheduler::Options sopts;
                sopts.resume_latency = sim::Duration::Micros(lat);
                core::Scheduler sched(exp.env(), exp.gpu(),
                                      std::make_unique<core::FairPolicy>(),
                                      sopts);
                const auto& p = profiles.Get("inception-v4", 100);
                sched.SetProfile(p.key, &p.cost,
                                 core::Profiler::ThresholdFor(p, q));
                exp.SetHooks(&sched);
                const auto rr = exp.Run(clients);
                out.Set("makespan_s", exp.makespan().seconds());
                out.RecordStatuses(rr);
              });
  }

  const auto& results = sweep.RunAll();
  std::size_t idx = 0;

  std::cout << "--- 1. driver channel bias (Figure 3 mechanism) ---\n";
  metrics::Table bias_t({"arbitration bias", "finish min (s)",
                         "finish max (s)", "spread", "CV"});
  for (double sigma : sigmas) {
    const auto& r = results[idx++];
    const double lo = r.metrics[0].second, hi = r.metrics[1].second;
    bias_t.AddRow({metrics::Table::Num(sigma, 2), metrics::Table::Num(lo, 2),
                   metrics::Table::Num(hi, 2),
                   metrics::Table::Num(hi / lo, 2) + "x",
                   metrics::Table::Pct(r.metrics[2].second)});
  }
  bias_t.Print(std::cout);
  std::cout << "With the bias off, the job-blind driver is accidentally fair"
               "\nand the paper's motivating unpredictability disappears.\n\n";

  std::cout << "--- 2. overflow cost charging (Figure 15 mechanism) ---\n";
  metrics::Table ov_t({"charge overflow", "min mean-quantum (us)",
                       "max mean-quantum (us)", "predicted Q (us)"});
  for (bool charge : {true, false}) {
    const auto& r = results[idx++];
    ov_t.AddRow({charge ? "yes (paper)" : "no (ablation)",
                 metrics::Table::Num(r.metrics[0].second, 0),
                 metrics::Table::Num(r.metrics[1].second, 0),
                 metrics::Table::Num(r.metrics[2].second, 0)});
  }
  ov_t.Print(std::cout);
  std::cout << "Uncharged overflow lets every job's effective quantum creep\n"
               "past the predicted Q (more for overflow-heavy models).\n\n";

  std::cout << "--- 3. gang resume latency (Figure 8 mechanism) ---\n";
  const double base_makespan = results[idx++].metrics[0].second;
  metrics::Table lat_t({"resume latency (us)", "overhead at Q=800us"});
  for (int lat : latencies) {
    const auto& r = results[idx++];
    lat_t.AddRow({std::to_string(lat),
                  metrics::Table::Pct(
                      (r.metrics[0].second - base_makespan) / base_makespan)});
  }
  lat_t.Print(std::cout);
  std::cout << "Per-switch wake-up cost translates directly into quantum\n"
               "overhead; at zero latency only pipeline bubbles remain.\n";
  return 0;
}
