// Ablations of the mechanisms DESIGN.md calls out, beyond the paper's own
// Figure-19 ablation:
//
//   1. Driver channel bias off  -> stock TF-Serving's finish-time spread
//      collapses (it is the arbitration bias that models Figure 3's
//      unpredictability).
//   2. Overflow charging off    -> per-quantum GPU durations inflate past
//      the predicted Q (the paper's Figure 15 accounting is what keeps
//      quanta honest).
//   3. Resume-latency sweep     -> the per-switch wake-up cost is the knob
//      behind the Overhead-Q shape (Figure 8).

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

void DriverBiasAblation() {
  std::cout << "--- 1. driver channel bias (Figure 3 mechanism) ---\n";
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 5);
  metrics::Table t({"arbitration bias", "finish min (s)", "finish max (s)",
                    "spread", "CV"});
  for (double sigma : {0.35, 0.15, 0.0}) {
    serving::ServerOptions opts;
    opts.seed = 3;
    opts.gpu.arbitration_bias_sigma = sigma;
    const auto r = bench::RunBaseline(opts, clients);
    metrics::Series f;
    for (const auto& c : r.clients) f.Add(c.finish_time.seconds());
    t.AddRow({metrics::Table::Num(sigma, 2), metrics::Table::Num(f.Min(), 2),
              metrics::Table::Num(f.Max(), 2),
              metrics::Table::Num(f.Max() / f.Min(), 2) + "x",
              metrics::Table::Pct(f.Cv())});
  }
  t.Print(std::cout);
  std::cout << "With the bias off, the job-blind driver is accidentally fair"
               "\nand the paper's motivating unpredictability disappears.\n\n";
}

void OverflowChargingAblation(bench::ProfileCache& profiles) {
  std::cout << "--- 2. overflow cost charging (Figure 15 mechanism) ---\n";
  std::vector<serving::ClientSpec> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(
        {.model = "inception-v4", .batch = 100, .num_batches = 5});
  }
  for (int i = 0; i < 3; ++i) {
    clients.push_back({.model = "vgg16", .batch = 120, .num_batches = 5});
  }
  const auto q = sim::Duration::Micros(1600);

  metrics::Table t({"charge overflow", "min mean-quantum (us)",
                    "max mean-quantum (us)", "predicted Q (us)"});
  for (bool charge : {true, false}) {
    serving::ServerOptions opts;
    opts.seed = 3;
    serving::Experiment exp(opts);
    core::Scheduler::Options sopts;
    sopts.charge_overflow = charge;
    core::Scheduler sched(exp.env(), exp.gpu(),
                          std::make_unique<core::FairPolicy>(), sopts);
    for (const char* m : {"inception-v4", "vgg16"}) {
      const auto& p = profiles.Get(m, m == std::string("vgg16") ? 120 : 100);
      sched.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
    }
    exp.SetHooks(&sched);
    exp.Run(clients);
    bench::RunOutcome run;
    run.quantum_log = sched.quantum_log();
    const auto stats = bench::PerJobQuantumStats(run, clients.size());
    metrics::Series means;
    for (const auto& [job, st] : stats) means.Add(st.mean_us);
    t.AddRow({charge ? "yes (paper)" : "no (ablation)",
              metrics::Table::Num(means.Min(), 0),
              metrics::Table::Num(means.Max(), 0),
              metrics::Table::Num(q.micros(), 0)});
  }
  t.Print(std::cout);
  std::cout << "Uncharged overflow lets every job's effective quantum creep\n"
               "past the predicted Q (more for overflow-heavy models).\n\n";
}

void ResumeLatencyAblation(bench::ProfileCache& profiles) {
  std::cout << "--- 3. gang resume latency (Figure 8 mechanism) ---\n";
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 2, 3);
  const auto q = sim::Duration::Micros(800);
  serving::ServerOptions opts;
  opts.seed = 3;
  const auto base = bench::RunBaseline(opts, clients);

  metrics::Table t({"resume latency (us)", "overhead at Q=800us"});
  for (int lat : {0, 20, 40, 80, 160}) {
    serving::Experiment exp(opts);
    core::Scheduler::Options sopts;
    sopts.resume_latency = sim::Duration::Micros(lat);
    core::Scheduler sched(exp.env(), exp.gpu(),
                          std::make_unique<core::FairPolicy>(), sopts);
    const auto& p = profiles.Get("inception-v4", 100);
    sched.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
    exp.SetHooks(&sched);
    exp.Run(clients);
    t.AddRow({std::to_string(lat),
              metrics::Table::Pct(
                  (exp.makespan() - base.makespan).Ratio(base.makespan))});
  }
  t.Print(std::cout);
  std::cout << "Per-switch wake-up cost translates directly into quantum\n"
               "overhead; at zero latency only pipeline bubbles remain.\n";
}

}  // namespace

int main() {
  bench::PrintHeader("Mechanism ablations", "DESIGN.md design-decision list");
  bench::ProfileCache profiles;
  DriverBiasAblation();
  OverflowChargingAblation(profiles);
  ResumeLatencyAblation(profiles);
  return 0;
}
