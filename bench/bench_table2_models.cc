// Reproduces Table 2: the seven DNN models, their graph sizes, and their
// solo runtimes at the paper's batch sizes.

#include <iostream>

#include "harness.h"
#include "models/model_zoo.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Table 2: DNN models used in the evaluation", "Table 2");

  bench::ProfileCache profiles;
  metrics::Table t({"Model", "Batch", "Nodes", "GPU Nodes", "Runtime (s)",
                    "Paper Runtime (s)", "GPU duration D (s)",
                    "Total cost C (s)", "C/D"});
  for (const models::ModelSpec& spec : models::AllModels()) {
    const graph::Graph g = models::BuildModel(spec);
    const core::ModelProfile& p = profiles.Get(spec.name, spec.paper_batch);
    t.AddRow({spec.name, std::to_string(spec.paper_batch),
              std::to_string(g.size()), std::to_string(g.gpu_node_count()),
              metrics::Table::Num(p.cost.solo_runtime.seconds(), 2),
              metrics::Table::Num(spec.paper_runtime_s, 2),
              metrics::Table::Num(p.GpuDuration().seconds(), 2),
              metrics::Table::Num(p.TotalCost() / 1e9, 2),
              metrics::Table::Num(p.CostAccumulationRate(), 2)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: node counts match Table 2 exactly; measured"
               "\nsolo runtimes land near the paper's (calibrated) values.\n";
  return 0;
}
