// google-benchmark microbenchmarks for the hot paths: the simulation event
// loop, GPU submission, and Olympian's per-node scheduler hooks. These bound
// the simulator's own cost, not the modeled system's.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "gpusim/gpu.h"
#include "graph/thread_pool.h"
#include "serving/server.h"
#include "sim/environment.h"

using namespace olympian;

namespace {

// Throughput of the raw event loop: one self-rescheduling process.
void BM_EventLoopDelay(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    const int n = 10000;
    env.Spawn([](sim::Environment& e, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await e.Delay(sim::Duration::Nanos(10));
      }
    }(env, n));
    env.Run();
    benchmark::DoNotOptimize(env.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopDelay)->Unit(benchmark::kMillisecond);

// Condition-variable ping-pong between two processes.
void BM_CondVarPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    sim::CondVar a(env), b(env);
    const int n = 5000;
    env.Spawn([](sim::CondVar& left, sim::CondVar& right, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        right.NotifyOne();
        co_await left.Wait();
      }
      right.NotifyOne();
    }(a, b, n));
    env.Spawn([](sim::CondVar& left, sim::CondVar& right, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await right.Wait();
        left.NotifyOne();
      }
    }(a, b, n));
    env.Run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_CondVarPingPong)->Unit(benchmark::kMillisecond);

// GPU submission path: small kernels through one stream.
void BM_GpuSubmitPath(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
    const auto s = gpu.CreateStream();
    const int n = 5000;
    env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await g.Submit(st, gpusim::KernelDesc{
                                  .job = 0,
                                  .thread_blocks = 64,
                                  .block_work = sim::Duration::Micros(5)});
      }
    }(gpu, s, n));
    env.Run();
    benchmark::DoNotOptimize(gpu.kernels_completed());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_GpuSubmitPath)->Unit(benchmark::kMillisecond);

// The scheduler's per-node hot path: OnNodeComputed cost accrual + rotation.
void BM_SchedulerAccrual(benchmark::State& state) {
  sim::Environment env;
  gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
  core::Scheduler sched(env, gpu, std::make_unique<core::FairPolicy>());
  graph::CostProfile profile(4);
  profile.RecordNodeCost(0, 100.0);
  profile.gpu_duration = sim::Duration::Millis(1);
  sched.SetProfile("m@1", &profile, 1000.0);
  graph::JobContext a, b;
  a.job = 0;
  a.model_key = "m@1";
  b.job = 1;
  b.model_key = "m@1";
  sched.RegisterRun(a);
  sched.RegisterRun(b);
  graph::Node node;
  node.id = 0;
  node.device = graph::Device::kGpu;
  for (auto _ : state) {
    sched.OnNodeComputed(sched.token() == 0 ? a : b, node);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerAccrual);

// End-to-end: one full serving experiment per iteration (small workload).
void BM_SmallServingExperiment(benchmark::State& state) {
  for (auto _ : state) {
    serving::ServerOptions opts;
    opts.seed = 3;
    serving::Experiment exp(opts);
    auto results = exp.Run(
        {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 1},
         serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 1}});
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SmallServingExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
