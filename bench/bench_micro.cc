// google-benchmark microbenchmarks for the hot paths: the simulation event
// loop, GPU submission, and Olympian's per-node scheduler hooks. These bound
// the simulator's own cost, not the modeled system's.
//
// The event-loop benchmarks also report heap-allocations-per-event (via a
// counting global operator new in this binary), the metric the coroutine
// frame pool and the two-tier event queue are tuned against.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "gpusim/gpu.h"
#include "graph/thread_pool.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "serving/cluster.h"
#include "serving/server.h"
#include "sim/environment.h"
#include "sim/sync.h"

// --- allocation counting ----------------------------------------------------
// Counts every heap allocation made in this binary. The sharded cluster
// benchmark runs engine worker threads inside the measured region, so the
// counter is atomic; relaxed increments keep the probe cheap on the
// single-threaded paths.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pairs the replaced operator new's inlined malloc with the free below
// and warns about a mismatch; the pairing is intentional here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace olympian;

namespace {

// Attaches events/sec and allocs/event counters to an event-loop benchmark.
void ReportEventCounters(benchmark::State& state, std::uint64_t events,
                         std::uint64_t allocs) {
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
  state.counters["allocs/event"] =
      events ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
}

// Throughput of the raw event loop: one self-rescheduling process.
void BM_EventLoopDelay(benchmark::State& state) {
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    const int n = 10000;
    const std::uint64_t a0 = g_allocs;
    env.Spawn([](sim::Environment& e, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await e.Delay(sim::Duration::Nanos(10));
      }
    }(env, n));
    env.Run();
    events += env.events_executed();
    allocs += g_allocs - a0;
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_EventLoopDelay)->Unit(benchmark::kMillisecond);

// The ScheduleNow-dominated workload: many processes cooperatively yielding
// at the same virtual instant (the shape of kernel waves, condvar wakes, and
// gang resumes). With `procs` runnable events queued at once, this is the
// event queue's deep-queue regime.
void BM_EventLoopScheduleNow(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int yields = 256;
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    const std::uint64_t a0 = g_allocs;
    for (int p = 0; p < procs; ++p) {
      env.Spawn([](sim::Environment& e, int count) -> sim::Task {
        for (int i = 0; i < count; ++i) {
          co_await e.Delay(sim::Duration::Zero());
        }
      }(env, yields));
    }
    env.Run();
    events += env.events_executed();
    allocs += g_allocs - a0;
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_EventLoopScheduleNow)
    ->Arg(16)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// The timer regime: many processes sleeping staggered positive delays, so
// the future-event heap stays deep and every event is a heap pop + push.
void BM_EventLoopTimers(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int ticks = 256;
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    const std::uint64_t a0 = g_allocs;
    for (int p = 0; p < procs; ++p) {
      env.Spawn([](sim::Environment& e, int count, int stride) -> sim::Task {
        for (int i = 0; i < count; ++i) {
          co_await e.Delay(sim::Duration::Nanos(100 + stride));
        }
      }(env, ticks, p));
    }
    env.Run();
    events += env.events_executed();
    allocs += g_allocs - a0;
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_EventLoopTimers)->Arg(1024)->Unit(benchmark::kMillisecond);

// Process churn: spawn/complete many short-lived processes (the coroutine
// frame + process-state allocation path).
void BM_SpawnChurn(benchmark::State& state) {
  std::uint64_t events = 0, allocs = 0;
  const int n = 4096;
  for (auto _ : state) {
    sim::Environment env;
    const std::uint64_t a0 = g_allocs;
    env.Spawn([](sim::Environment& e, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        e.Spawn([](sim::Environment& env2) -> sim::Task {
          co_await env2.Delay(sim::Duration::Nanos(5));
        }(e));
        co_await e.Delay(sim::Duration::Nanos(1));
      }
    }(env, n));
    env.Run();
    events += env.events_executed();
    allocs += g_allocs - a0;
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_SpawnChurn)->Unit(benchmark::kMillisecond);

// Condition-variable ping-pong between two processes. The responder is
// spawned first and parks in Wait() before the driver's first notify (a
// notify with no waiter is lost — this is a condvar, not a semaphore).
void BM_CondVarPingPong(benchmark::State& state) {
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    sim::CondVar ping(env), pong(env);
    const int n = 5000;
    const std::uint64_t a0 = g_allocs;
    env.Spawn([](sim::CondVar& in, sim::CondVar& out, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await in.Wait();
        out.NotifyOne();
      }
    }(ping, pong, n));
    env.Spawn([](sim::Environment& e, sim::CondVar& out, sim::CondVar& in,
                 int count) -> sim::Task {
      co_await e.Delay(sim::Duration::Zero());  // let the responder park
      for (int i = 0; i < count; ++i) {
        out.NotifyOne();
        co_await in.Wait();
      }
    }(env, ping, pong, n));
    env.Run();
    events += env.events_executed();
    allocs += g_allocs - a0;
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_CondVarPingPong)->Unit(benchmark::kMillisecond);

// Attaches kernels/sec, waves/sec, and allocs/kernel counters to a
// GPU-path benchmark. These are the hot-path metrics the kernel freelist
// and wave coalescing are tuned against.
void ReportKernelCounters(benchmark::State& state, std::uint64_t kernels,
                          std::uint64_t waves, std::uint64_t allocs) {
  state.SetItemsProcessed(static_cast<std::int64_t>(kernels));
  state.counters["kernels/s"] = benchmark::Counter(
      static_cast<double>(kernels), benchmark::Counter::kIsRate);
  state.counters["waves/s"] = benchmark::Counter(static_cast<double>(waves),
                                                 benchmark::Counter::kIsRate);
  state.counters["allocs/kernel"] =
      kernels ? static_cast<double>(allocs) / static_cast<double>(kernels)
              : 0.0;
}

// GPU submission path: small kernels through one stream, with a live
// metrics sampler on the virtual clock. Paired with BM_GpuSubmitPath by the
// perf-smoke gate: kernels/s must stay within 5% and the kernel path must
// remain allocation-free with the sampler running (handles resolved up
// front, TimeSeries storage pre-reserved).
void BM_GpuSubmitPathObserved(benchmark::State& state) {
  std::uint64_t kernels = 0, waves = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
    const auto s = gpu.CreateStream();
    const int n = 5000;
    metrics::MetricRegistry registry;
    env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await g.Submit(st, gpusim::KernelDesc{
                                  .job = 0,
                                  .thread_blocks = 64,
                                  .block_work = sim::Duration::Micros(5)});
      }
    }(gpu, s, n));
    // Sampler: pending-kernel depth and completed-kernel count every 100us
    // of virtual time until the workload drains (~250 samples, inside the
    // series' reserved capacity).
    env.Spawn([](sim::Environment& e, gpusim::Gpu& g,
                 metrics::MetricRegistry& reg, std::uint64_t target)
                  -> sim::Task {
      auto& pending = reg.GetSeries("olympian_gpu_pending_kernels");
      auto& done = reg.GetSeries("olympian_gpu_kernels_completed");
      while (g.kernels_completed() < target) {
        co_await e.Delay(sim::Duration::Micros(100));
        pending.Sample(e.Now(), static_cast<double>(g.pending_kernels()));
        done.Sample(e.Now(), static_cast<double>(g.kernels_completed()));
      }
    }(env, gpu, registry, static_cast<std::uint64_t>(n)));
    const std::uint64_t a0 = g_allocs;
    env.Run();
    allocs += g_allocs - a0;
    kernels += gpu.kernels_completed();
    waves += gpu.waves_dispatched();
    benchmark::DoNotOptimize(registry);
  }
  ReportKernelCounters(state, kernels, waves, allocs);
}
BENCHMARK(BM_GpuSubmitPathObserved)->Unit(benchmark::kMillisecond);

// GPU submission path: small kernels through one stream.
void BM_GpuSubmitPath(benchmark::State& state) {
  std::uint64_t kernels = 0, waves = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
    const auto s = gpu.CreateStream();
    const int n = 5000;
    env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await g.Submit(st, gpusim::KernelDesc{
                                  .job = 0,
                                  .thread_blocks = 64,
                                  .block_work = sim::Duration::Micros(5)});
      }
    }(gpu, s, n));
    const std::uint64_t a0 = g_allocs;
    env.Run();
    allocs += g_allocs - a0;
    kernels += gpu.kernels_completed();
    waves += gpu.waves_dispatched();
  }
  ReportKernelCounters(state, kernels, waves, allocs);
}
BENCHMARK(BM_GpuSubmitPath)->Unit(benchmark::kMillisecond);

// Cross-stream arbitration: several backlogged streams of small kernels, so
// every kernel start goes through the weighted ready-stream pick.
void BM_GpuMultiStreamArbitration(benchmark::State& state) {
  const int streams = 8;
  std::uint64_t kernels = 0, waves = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 7});
    const int per_stream = 1000;
    for (int i = 0; i < streams; ++i) {
      const auto s = gpu.CreateStream();
      env.Spawn(
          [](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
            for (int k = 0; k < count; ++k) {
              co_await g.Submit(st,
                                gpusim::KernelDesc{
                                    .job = st,
                                    .thread_blocks = 16,
                                    .block_work = sim::Duration::Micros(3)});
            }
          }(gpu, s, per_stream));
    }
    const std::uint64_t a0 = g_allocs;
    env.Run();
    allocs += g_allocs - a0;
    kernels += gpu.kernels_completed();
    waves += gpu.waves_dispatched();
  }
  ReportKernelCounters(state, kernels, waves, allocs);
}
BENCHMARK(BM_GpuMultiStreamArbitration)->Unit(benchmark::kMillisecond);

// The wave-train regime: a long-running kernel pins most of the device
// while another stream pushes wide (but non-saturating) kernels through the
// remaining slots, so each kernel executes as a train of identical waves.
// This is the shape wave coalescing collapses into one timer event per
// train (pre-coalescing: one event per wave).
void BM_GpuWaveTrain(benchmark::State& state) {
  std::uint64_t kernels = 0, waves = 0, allocs = 0;
  for (auto _ : state) {
    sim::Environment env;
    gpusim::Gpu::Options o;
    o.seed = 3;
    gpusim::Gpu gpu(env, o);  // 224 slots (GTX-1080Ti)
    const auto backdrop = gpu.CreateStream();
    const auto train = gpu.CreateStream();
    const int n = 400;
    // Backdrop: 200 slots held for 60ms — one wave, far horizon.
    env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st) -> sim::Task {
      co_await g.Submit(st, gpusim::KernelDesc{
                                .job = 1,
                                .thread_blocks = 200,
                                .block_work = sim::Duration::Millis(60)});
    }(gpu, backdrop));
    // Trains: 220 blocks through the free 24 slots -> 10 waves per kernel.
    env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
      for (int i = 0; i < count; ++i) {
        co_await g.Submit(st, gpusim::KernelDesc{
                                  .job = 2,
                                  .thread_blocks = 220,
                                  .block_work = sim::Duration::Micros(5)});
      }
    }(gpu, train, n));
    const std::uint64_t a0 = g_allocs;
    env.Run();
    allocs += g_allocs - a0;
    kernels += gpu.kernels_completed();
    waves += gpu.waves_dispatched();
  }
  ReportKernelCounters(state, kernels, waves, allocs);
}
BENCHMARK(BM_GpuWaveTrain)->Unit(benchmark::kMillisecond);

// The scheduler's per-node hot path: OnNodeComputed cost accrual + rotation.
void BM_SchedulerAccrual(benchmark::State& state) {
  sim::Environment env;
  gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
  core::Scheduler sched(env, gpu, std::make_unique<core::FairPolicy>());
  graph::CostProfile profile(4);
  profile.RecordNodeCost(0, 100.0);
  profile.gpu_duration = sim::Duration::Millis(1);
  sched.SetProfile("m@1", &profile, 1000.0);
  graph::JobContext a, b;
  a.job = 0;
  a.model_key = "m@1";
  b.job = 1;
  b.model_key = "m@1";
  sched.RegisterRun(a);
  sched.RegisterRun(b);
  graph::Node node;
  node.id = 0;
  node.device = graph::Device::kGpu;
  for (auto _ : state) {
    sched.OnNodeComputed(sched.token() == 0 ? a : b, node);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerAccrual);

// End-to-end: one full serving experiment per iteration. Several batches
// per client so per-experiment setup (profile build, graph interning) is
// amortized the way a long-lived serving process amortizes it.
void BM_SmallServingExperiment(benchmark::State& state) {
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    serving::ServerOptions opts;
    opts.seed = 3;
    serving::Experiment exp(opts);
    const std::uint64_t a0 = g_allocs;
    auto results = exp.Run(
        {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 5},
         serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 5}});
    allocs += g_allocs - a0;
    events += exp.env().events_executed();
    benchmark::DoNotOptimize(results);
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_SmallServingExperiment)->Unit(benchmark::kMillisecond);

// The same workload with the full observability stack live: request tracing
// into a preallocated Tracer, per-request latency histograms, and the
// virtual-clock sampler at 1ms. Paired with BM_SmallServingExperiment by
// the perf-smoke gate: events/s must stay within 5%.
void BM_SmallServingExperimentObserved(benchmark::State& state) {
  std::uint64_t events = 0, allocs = 0;
  for (auto _ : state) {
    serving::ServerOptions opts;
    opts.seed = 3;
    metrics::Tracer tracer(20000);
    metrics::MetricRegistry registry;
    opts.executor.tracer = &tracer;
    opts.observability.registry = &registry;
    opts.observability.sample_interval = sim::Duration::Millis(1);
    serving::Experiment exp(opts);
    const std::uint64_t a0 = g_allocs;
    auto results = exp.Run(
        {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 5},
         serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 5}});
    allocs += g_allocs - a0;
    events += exp.env().events_executed();
    benchmark::DoNotOptimize(results);
    benchmark::DoNotOptimize(registry);
  }
  ReportEventCounters(state, events, allocs);
}
BENCHMARK(BM_SmallServingExperimentObserved)->Unit(benchmark::kMillisecond);

// --- paired observability-overhead gates ------------------------------------
// The perf-smoke CI bound is tight (<=5%): comparing two separately-timed
// benchmarks can't resolve it on a busy host, where throughput drifts more
// than that between benchmarks. These run the plain and observed
// configuration back-to-back inside every iteration, so drift cancels, and
// export the observed/plain rate ratio directly as a counter for
// compare_bench.py --min-counter.

// GPU submission path, plain vs live-sampler: `kernels_ratio` must stay
// >= 0.95 and `allocs/kernel` (observed half) ~0.
void BM_GpuObservabilityOverhead(benchmark::State& state) {
  double plain_s = 0.0, obs_s = 0.0;
  std::uint64_t plain_kernels = 0, obs_kernels = 0, obs_allocs = 0;
  for (auto _ : state) {
    for (int observed = 0; observed < 2; ++observed) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::Environment env;
      gpusim::Gpu gpu(env, gpusim::Gpu::Options{.seed = 1});
      const auto s = gpu.CreateStream();
      const int n = 5000;
      metrics::MetricRegistry registry;
      env.Spawn([](gpusim::Gpu& g, gpusim::StreamId st, int count) -> sim::Task {
        for (int i = 0; i < count; ++i) {
          co_await g.Submit(st, gpusim::KernelDesc{
                                    .job = 0,
                                    .thread_blocks = 64,
                                    .block_work = sim::Duration::Micros(5)});
        }
      }(gpu, s, n));
      if (observed != 0) {
        // 1ms virtual cadence: the sampling rate a serving deployment uses,
        // not one tick per handful of kernels — the gate bounds the cost of
        // observing the kernel path, not of swamping it.
        env.Spawn([](sim::Environment& e, gpusim::Gpu& g,
                     metrics::MetricRegistry& reg, std::uint64_t target)
                      -> sim::Task {
          auto& pending = reg.GetSeries("olympian_gpu_pending_kernels");
          while (g.kernels_completed() < target) {
            co_await e.Delay(sim::Duration::Millis(1));
            pending.Sample(e.Now(), static_cast<double>(g.pending_kernels()));
          }
        }(env, gpu, registry, static_cast<std::uint64_t>(n)));
      }
      const std::uint64_t a0 = g_allocs;
      env.Run();
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (observed != 0) {
        obs_s += secs;
        obs_kernels += gpu.kernels_completed();
        obs_allocs += g_allocs - a0;
      } else {
        plain_s += secs;
        plain_kernels += gpu.kernels_completed();
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(plain_kernels + obs_kernels));
  const double plain_rate =
      plain_s > 0 ? static_cast<double>(plain_kernels) / plain_s : 0.0;
  const double obs_rate =
      obs_s > 0 ? static_cast<double>(obs_kernels) / obs_s : 0.0;
  state.counters["kernels_ratio"] =
      plain_rate > 0 ? obs_rate / plain_rate : 0.0;
  state.counters["allocs/kernel"] =
      obs_kernels ? static_cast<double>(obs_allocs) /
                        static_cast<double>(obs_kernels)
                  : 0.0;
}
BENCHMARK(BM_GpuObservabilityOverhead)->Unit(benchmark::kMillisecond);

// Full serving experiment, plain vs tracer+registry+sampler: `events_ratio`
// must stay >= 0.95.
void BM_ServingObservabilityOverhead(benchmark::State& state) {
  double plain_s = 0.0, obs_s = 0.0;
  std::uint64_t plain_events = 0, obs_events = 0;
  const std::vector<serving::ClientSpec> workload{
      {.model = "resnet-152", .batch = 20, .num_batches = 5},
      {.model = "resnet-152", .batch = 20, .num_batches = 5}};
  for (auto _ : state) {
    for (int observed = 0; observed < 2; ++observed) {
      serving::ServerOptions opts;
      opts.seed = 3;
      metrics::Tracer tracer(20000);
      metrics::MetricRegistry registry;
      if (observed != 0) {
        opts.executor.tracer = &tracer;
        opts.observability.registry = &registry;
        opts.observability.sample_interval = sim::Duration::Millis(1);
      }
      const auto t0 = std::chrono::steady_clock::now();
      serving::Experiment exp(opts);
      auto results = exp.Run(workload);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      benchmark::DoNotOptimize(results);
      if (observed != 0) {
        obs_s += secs;
        obs_events += exp.env().events_executed();
      } else {
        plain_s += secs;
        plain_events += exp.env().events_executed();
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(plain_events + obs_events));
  const double plain_rate =
      plain_s > 0 ? static_cast<double>(plain_events) / plain_s : 0.0;
  const double obs_rate =
      obs_s > 0 ? static_cast<double>(obs_events) / obs_s : 0.0;
  state.counters["events_ratio"] =
      plain_rate > 0 ? obs_rate / plain_rate : 0.0;
}
BENCHMARK(BM_ServingObservabilityOverhead)->Unit(benchmark::kMillisecond);

// --- sharded cluster engine -------------------------------------------------
// The same 16-server chaos workload executed single-threaded (shards=1),
// with a static 4-shard partition, and with an adaptive (traffic-weighted
// bin-packed) 4-shard partition, back-to-back inside every iteration so
// host drift cancels. Exports:
//   speedup           wall-clock ratio (shards=1 time / static shards=4 time)
//   adaptive_speedup  wall-clock ratio (static shards=4 / adaptive shards=4)
//   events/s          static sharded-run event throughput (wall clock)
//   allocs/event      static sharded-run allocations per executed event
//   identical         1 iff static trajectory matches shards=1 bit-for-bit
//   adaptive_identical 1 iff the adaptive trajectory also matches
// The perf-smoke gate requires speedup >= 1.8, adaptive_speedup >= 1.0, and
// both identity flags == 1 on a multi-core runner; on a single hardware
// thread the speedups degrade to ~1x (the barrier costs stay) and those
// gates are not meaningful.
void BM_ShardedClusterThroughput(benchmark::State& state) {
  struct ClusterOut {
    double secs = 0.0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    std::vector<double> lane_weights;
    std::vector<serving::ClusterClientResult> clients;
  };
  auto run = [](std::size_t shards, std::vector<double> weights = {}) {
    serving::ClusterOptions opts;
    opts.num_servers = 16;
    opts.server.num_gpus = 1;
    opts.server.pool_threads = 100;
    opts.seed = 17;
    opts.shards = shards;
    if (!weights.empty()) {
      opts.assignment = serving::ShardAssignment::kAdaptive;
      opts.server_weights = std::move(weights);
    }
    const auto at = [](double ms) {
      return sim::TimePoint() + sim::Duration::Millis(ms);
    };
    opts.faults.Crash(at(150), sim::Duration::Millis(400), /*server=*/0);
    opts.faults.Crash(at(900), sim::Duration::Millis(300), /*server=*/7);
    opts.faults.Partition(at(450), sim::Duration::Millis(350), /*server=*/12,
                          fault::PartitionDirection::kToServer);
    serving::ClusterClientSpec c;
    c.request.model = "googlenet";
    c.request.batch = 10;
    c.request.num_batches = 6;
    c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
    c.arrivals.rate_rps = 120.0;
    ClusterOut out;
    const std::uint64_t a0 = g_allocs;
    const auto t0 = std::chrono::steady_clock::now();
    serving::Cluster cluster(opts);
    out.clients =
        cluster.Run(std::vector<serving::ClusterClientSpec>(32, c));
    out.secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    out.allocs = g_allocs - a0;
    out.events = cluster.engine().events_executed();
    for (const std::uint64_t b : cluster.engine().lane_boundary_events()) {
      out.lane_weights.push_back(static_cast<double>(b));
    }
    return out;
  };
  auto same_trajectory = [](const ClusterOut& a, const ClusterOut& b) {
    if (a.events != b.events || a.clients.size() != b.clients.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
      if (a.clients[i].finish_time != b.clients[i].finish_time ||
          a.clients[i].request_latency_ms != b.clients[i].request_latency_ms ||
          a.clients[i].request_status != b.clients[i].request_status) {
        return false;
      }
    }
    return true;
  };

  double seq_s = 0.0, par_s = 0.0, ada_s = 0.0;
  std::uint64_t par_events = 0, par_allocs = 0;
  bool identical = true, ada_identical = true;
  for (auto _ : state) {
    const ClusterOut seq = run(1);
    const ClusterOut par = run(4);
    const ClusterOut ada = run(4, par.lane_weights);
    seq_s += seq.secs;
    par_s += par.secs;
    ada_s += ada.secs;
    par_events += par.events;
    par_allocs += par.allocs;
    identical = identical && same_trajectory(seq, par);
    ada_identical = ada_identical && same_trajectory(seq, ada);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(par_events));
  state.counters["speedup"] = par_s > 0 ? seq_s / par_s : 0.0;
  state.counters["adaptive_speedup"] = ada_s > 0 ? par_s / ada_s : 0.0;
  state.counters["events/s"] =
      par_s > 0 ? static_cast<double>(par_events) / par_s : 0.0;
  state.counters["allocs/event"] =
      par_events ? static_cast<double>(par_allocs) /
                       static_cast<double>(par_events)
                 : 0.0;
  state.counters["identical"] = identical ? 1.0 : 0.0;
  state.counters["adaptive_identical"] = ada_identical ? 1.0 : 0.0;
}
// One full chaos run per engine config per iteration (~seconds): the default
// min-time keeps this at a single iteration, and the paired legs make that
// one sample stable enough for the perf-smoke gate.
BENCHMARK(BM_ShardedClusterThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
