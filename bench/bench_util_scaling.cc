// Reproduces §4.3: GPU utilization under each scheduler, and scalability —
// the maximum number of concurrent clients each system sustains, with the
// limiting resource (GPU memory vs thread pool).

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

// Largest client count in `counts` that completes; reports the limiter.
struct Capacity {
  int max_clients = 0;
  std::string limiter = "none";
};

Capacity FindCapacity(const std::string& model, int batch, bool olympian,
                      bench::ProfileCache& profiles, sim::Duration q) {
  Capacity cap;
  for (int n = 10; n <= 140; n += 10) {
    const auto clients = bench::HomogeneousClients(model, batch, n, 1);
    serving::ServerOptions opts;
    opts.seed = 55;
    try {
      if (olympian) {
        bench::RunOlympian(opts, clients, "fair", q, profiles);
      } else {
        bench::RunBaseline(opts, clients);
      }
      cap.max_clients = n;
    } catch (const gpusim::OutOfDeviceMemory&) {
      cap.limiter = "GPU memory";
      break;
    } catch (const serving::ServerStalled&) {
      cap.limiter = "thread pool";
      break;
    }
  }
  return cap;
}

}  // namespace

int main() {
  bench::PrintHeader("GPU utilization and scalability", "Section 4.3");

  bench::ProfileCache profiles;
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);

  // --- utilization: 10 Inception clients under each scheduler -----------
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  serving::ServerOptions opts;
  opts.seed = 47;

  const auto base = bench::RunBaseline(opts, clients);

  auto weighted = clients;
  for (std::size_t i = 0; i < 5; ++i) weighted[i].weight = 2;
  auto prio = clients;
  for (std::size_t i = 0; i < prio.size(); ++i) {
    prio[i].priority = 10 - static_cast<int>(i);
  }
  const auto fair = bench::RunOlympian(opts, clients, "fair", q, profiles);
  const auto wfair =
      bench::RunOlympian(opts, weighted, "weighted-fair", q, profiles);
  const auto pr = bench::RunOlympian(opts, prio, "priority", q, profiles);

  metrics::Table ut({"Scheduler", "GPU utilization", "Paper"});
  ut.AddRow({"TF-Serving (default)", metrics::Table::Pct(base.utilization),
             "84.7%"});
  ut.AddRow({"Olympian fair", metrics::Table::Pct(fair.utilization), "78.6%"});
  ut.AddRow({"Olympian weighted-fair", metrics::Table::Pct(wfair.utilization),
             "78.1%"});
  ut.AddRow({"Olympian priority", metrics::Table::Pct(pr.utilization),
             "76.4%"});
  ut.Print(std::cout);
  std::cout << "Expected shape: Olympian sacrifices a few percent of\n"
               "utilization vs TF-Serving (paper: 6-8%; here less, because\n"
               "our simulated jobs keep their own pipelines fuller than the\n"
               "paper's real single-job duty cycle).\n\n";

  // --- scalability -------------------------------------------------------
  metrics::Table st({"System", "Model", "Max clients", "Limited by",
                     "Paper"});
  {
    const auto tfs = FindCapacity("inception-v4", 100, false, profiles, q);
    st.AddRow({"TF-Serving", "inception-v4", std::to_string(tfs.max_clients),
               tfs.limiter, "~100 (memory)"});
    const auto oly = FindCapacity("inception-v4", 100, true, profiles, q);
    st.AddRow({"Olympian", "inception-v4", std::to_string(oly.max_clients),
               oly.limiter, "40-60 (threads)"});
    const auto tfs_r = FindCapacity("resnet-152", 100, false, profiles, q);
    st.AddRow({"TF-Serving", "resnet-152", std::to_string(tfs_r.max_clients),
               tfs_r.limiter, "~45 (memory)"});
    const auto oly_r = FindCapacity("resnet-152", 100, true, profiles, q);
    st.AddRow({"Olympian", "resnet-152", std::to_string(oly_r.max_clients),
               oly_r.limiter, "~45 (memory)"});
  }
  st.Print(std::cout);
  std::cout << "\nExpected shape: TF-Serving is memory-limited; for Inception\n"
               "Olympian hits the thread-pool limit first because suspended\n"
               "gangs hold pool threads across quanta.\n";
  return 0;
}
