// Reproduces §4.3: GPU utilization under each scheduler, and scalability —
// the maximum number of concurrent clients each system sustains, with the
// limiting resource (GPU memory vs thread pool).
//
// The four utilization runs and four capacity searches are independent
// simulations, fanned across OS threads via SweepRunner (each case builds
// its own ProfileCache). Scalars land in BENCH_util_scaling.json.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

// Largest client count in `counts` that completes; reports the limiter.
struct Capacity {
  int max_clients = 0;
  std::string limiter = "none";
};

Capacity FindCapacity(const std::string& model, int batch, bool olympian,
                      bench::ProfileCache& profiles, sim::Duration q) {
  Capacity cap;
  for (int n = 10; n <= 140; n += 10) {
    const auto clients = bench::HomogeneousClients(model, batch, n, 1);
    serving::ServerOptions opts;
    opts.seed = 55;
    try {
      if (olympian) {
        bench::RunOlympian(opts, clients, "fair", q, profiles);
      } else {
        bench::RunBaseline(opts, clients);
      }
      cap.max_clients = n;
    } catch (const gpusim::OutOfDeviceMemory&) {
      cap.limiter = "GPU memory";
      break;
    } catch (const serving::ServerStalled&) {
      cap.limiter = "thread pool";
      break;
    }
  }
  return cap;
}

}  // namespace

int main() {
  bench::PrintHeader("GPU utilization and scalability", "Section 4.3");

  // Q is deterministic; compute it once and share it by value.
  const auto q = [] {
    bench::ProfileCache profiles;
    const auto& prof = profiles.GetWithCurve("inception-v4", 100);
    return core::Profiler::SelectQ({&prof}, 0.025);
  }();

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  serving::ServerOptions opts;
  opts.seed = 47;

  auto weighted = clients;
  for (std::size_t i = 0; i < 5; ++i) weighted[i].weight = 2;
  auto prio = clients;
  for (std::size_t i = 0; i < prio.size(); ++i) {
    prio[i].priority = 10 - static_cast<int>(i);
  }

  // --- utilization: 10 Inception clients under each scheduler -----------
  bench::SweepRunner sweep("util_scaling");
  sweep.Add("util-tf-serving", [&](bench::SweepCase& out) {
    const auto run = bench::RunBaseline(opts, clients);
    out.Set("utilization", run.utilization);
    out.RecordStatuses(run.clients);
  });
  sweep.Add("util-olympian-fair", [&](bench::SweepCase& out) {
    bench::ProfileCache profiles;
    const auto run = bench::RunOlympian(opts, clients, "fair", q, profiles);
    out.Set("utilization", run.utilization);
    out.RecordStatuses(run.clients);
  });
  sweep.Add("util-olympian-weighted-fair", [&](bench::SweepCase& out) {
    bench::ProfileCache profiles;
    const auto run =
        bench::RunOlympian(opts, weighted, "weighted-fair", q, profiles);
    out.Set("utilization", run.utilization);
    out.RecordStatuses(run.clients);
  });
  sweep.Add("util-olympian-priority", [&](bench::SweepCase& out) {
    bench::ProfileCache profiles;
    const auto run =
        bench::RunOlympian(opts, prio, "priority", q, profiles);
    out.Set("utilization", run.utilization);
    out.RecordStatuses(run.clients);
  });

  // --- scalability -------------------------------------------------------
  struct CapRow {
    const char* system;
    const char* model;
    int batch;
    bool olympian;
    const char* paper;
    Capacity result;
  };
  CapRow caps[] = {
      {"TF-Serving", "inception-v4", 100, false, "~100 (memory)", {}},
      {"Olympian", "inception-v4", 100, true, "40-60 (threads)", {}},
      {"TF-Serving", "resnet-152", 100, false, "~45 (memory)", {}},
      {"Olympian", "resnet-152", 100, true, "~45 (memory)", {}},
  };
  for (auto& row : caps) {
    sweep.Add(std::string("capacity-") + row.system + "-" + row.model,
              [&row, q](bench::SweepCase& out) {
                bench::ProfileCache profiles;
                row.result = FindCapacity(row.model, row.batch, row.olympian,
                                          profiles, q);
                out.Set("max_clients", row.result.max_clients);
              });
  }

  const auto& results = sweep.RunAll();

  metrics::Table ut({"Scheduler", "GPU utilization", "Paper"});
  const char* paper_util[] = {"84.7%", "78.6%", "78.1%", "76.4%"};
  const char* util_names[] = {"TF-Serving (default)", "Olympian fair",
                              "Olympian weighted-fair", "Olympian priority"};
  for (int i = 0; i < 4; ++i) {
    ut.AddRow({util_names[i], metrics::Table::Pct(results[i].metrics[0].second),
               paper_util[i]});
  }
  ut.Print(std::cout);
  std::cout << "Expected shape: Olympian sacrifices a few percent of\n"
               "utilization vs TF-Serving (paper: 6-8%; here less, because\n"
               "our simulated jobs keep their own pipelines fuller than the\n"
               "paper's real single-job duty cycle).\n\n";

  metrics::Table st({"System", "Model", "Max clients", "Limited by",
                     "Paper"});
  for (const auto& row : caps) {
    st.AddRow({row.system, row.model, std::to_string(row.result.max_clients),
               row.result.limiter, row.paper});
  }
  st.Print(std::cout);
  std::cout << "\nExpected shape: TF-Serving is memory-limited; for Inception\n"
               "Olympian hits the thread-pool limit first because suspended\n"
               "gangs hold pool threads across quanta.\n";
  return 0;
}
