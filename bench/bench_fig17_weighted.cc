// Reproduces Figure 17: weighted fair sharing on a homogeneous workload.
// With weights k:1 split across two halves of the clients, the theoretical
// finish-time ratio is (k+1)/2k.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

void RunWeighted(bench::ProfileCache& profiles, sim::Duration q, int k) {
  auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  for (std::size_t i = 0; i < 5; ++i) clients[i].weight = k;

  serving::ServerOptions opts;
  opts.seed = 21;
  const auto r = bench::RunOlympian(opts, clients, "weighted-fair", q, profiles);

  metrics::Table t({"Client id", "Weight", "Finish (s)"});
  metrics::Series heavy, light;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    t.AddRow({std::to_string(i), std::to_string(clients[i].weight),
              bench::FmtSeconds(r.clients[i].finish_time)});
    (i < 5 ? heavy : light).Add(r.clients[i].finish_time.seconds());
  }
  t.Print(std::cout);
  const double ratio = heavy.Mean() / light.Mean();
  const double expect = static_cast<double>(k + 1) / (2.0 * k);
  std::cout << "Weight " << k << ":1 finish-time ratio: "
            << metrics::Table::Num(ratio, 3) << "  (theory (k+1)/2k = "
            << metrics::Table::Num(expect, 3) << ")\n\n";
}

}  // namespace

int main() {
  bench::PrintHeader("Weighted fair sharing, weights 2:1 and 10:1",
                     "Figure 17");

  bench::ProfileCache profiles;
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);

  RunWeighted(profiles, q, 2);
  RunWeighted(profiles, q, 10);

  std::cout << "Expected shape: paper sees ~36-38 s vs ~50 s for 2:1\n"
               "(ratio 0.74 vs theoretical 0.75) and a ~55% ratio for 10:1.\n";
  return 0;
}
