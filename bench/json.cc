#include "json.h"

#include <cmath>
#include <cstdio>

namespace olympian::bench {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Indent(std::string& out, int depth) { out.append(2 * depth, ' '); }

}  // namespace

Json Json::Str(std::string s) {
  Json j(Kind::kString);
  j.scalar_ = std::move(s);
  return j;
}

Json Json::Num(double v) {
  Json j(Kind::kNumber);
  if (!std::isfinite(v)) {
    j.scalar_ = "null";  // JSON has no inf/nan
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    j.scalar_ = buf;
  }
  return j;
}

Json& Json::Set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  elements_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kString:
      AppendEscaped(out, scalar_);
      break;
    case Kind::kNumber:
      out += scalar_;
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        Indent(out, depth + 1);
        AppendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second.DumpTo(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      Indent(out, depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        Indent(out, depth + 1);
        elements_[i].DumpTo(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      Indent(out, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0);
  out += '\n';
  return out;
}

bool WriteJsonFile(const std::string& path, const Json& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = root.Dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace olympian::bench
