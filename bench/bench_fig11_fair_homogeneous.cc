// Reproduces Figure 11: fair sharing on a homogeneous workload — ten
// concurrent Inception clients, stock TF-Serving vs Olympian fair sharing.
// Olympian equalizes finish times; TF-Serving does not.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Fair sharing: homogeneous workload finish times",
                     "Figure 11");

  bench::ProfileCache profiles;
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);
  std::cout << "Profiler-selected Q at 2.5% overhead tolerance: "
            << metrics::Table::Num(q.micros(), 0) << " us\n";

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  serving::ServerOptions opts;
  opts.seed = 5;
  const auto base = bench::RunBaseline(opts, clients);
  const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);

  metrics::Table t({"Client id", "TF-Serving (s)", "Olympian fair (s)"});
  metrics::Series bf, of;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    t.AddRow({std::to_string(i), bench::FmtSeconds(base.clients[i].finish_time),
              bench::FmtSeconds(oly.clients[i].finish_time)});
    bf.Add(base.clients[i].finish_time.seconds());
    of.Add(oly.clients[i].finish_time.seconds());
  }
  t.Print(std::cout);
  std::cout << "\nTF-Serving spread: " << bench::FmtSeconds(sim::Duration::Seconds(bf.Min()))
            << " - " << bench::FmtSeconds(sim::Duration::Seconds(bf.Max()))
            << " s (CV " << metrics::Table::Pct(bf.Cv()) << ")\n"
            << "Olympian spread:   " << bench::FmtSeconds(sim::Duration::Seconds(of.Min()))
            << " - " << bench::FmtSeconds(sim::Duration::Seconds(of.Max()))
            << " s (CV " << metrics::Table::Pct(of.Cv()) << ")\n"
            << "Overhead vs TF-Serving makespan: "
            << metrics::Table::Pct((oly.makespan - base.makespan).Ratio(base.makespan))
            << " (tolerance was 2.5%)\n"
            << "Token switches: " << oly.switches << "\n"
            << "Expected shape: paper sees 42-50 s spread for TF-Serving and\n"
               "nearly identical 48-50 s finishes under Olympian.\n";
  return 0;
}
