// Reproduces Figure 19 (ablation): replacing Olympian's profiled cost-based
// quanta with a plain CPU wall-clock timer. The timer variant loses
// isolation: homogeneous finish times spread again, and heterogeneous jobs
// receive widely varying GPU durations per quantum.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("CPU-timer quanta ablation (why profiling matters)",
                     "Figure 19");

  bench::ProfileCache profiles;
  const auto& pi = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&pi}, 0.025);

  // Left: homogeneous workload under the CPU-timer scheduler.
  const auto homo = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  serving::ServerOptions opts;
  opts.seed = 31;
  const auto timer_homo = bench::RunCpuTimerAblation(opts, homo, "fair", q);
  const auto cost_homo = bench::RunOlympian(opts, homo, "fair", q, profiles);

  metrics::Table t1({"Client id", "CPU-timer finish (s)",
                     "Cost-based finish (s)"});
  metrics::Series tf, cf;
  for (std::size_t i = 0; i < homo.size(); ++i) {
    t1.AddRow({std::to_string(i),
               bench::FmtSeconds(timer_homo.clients[i].finish_time),
               bench::FmtSeconds(cost_homo.clients[i].finish_time)});
    tf.Add(timer_homo.clients[i].finish_time.seconds());
    cf.Add(cost_homo.clients[i].finish_time.seconds());
  }
  t1.Print(std::cout);
  std::cout << "Homogeneous finish-time CV: CPU-timer "
            << metrics::Table::Pct(tf.Cv()) << " vs cost-based "
            << metrics::Table::Pct(cf.Cv()) << "\n\n";

  // Right: heterogeneous workload — per-job GPU duration per quantum.
  std::vector<serving::ClientSpec> hetero;
  for (int i = 0; i < 5; ++i) {
    hetero.push_back(
        {.model = "inception-v4", .batch = 100, .num_batches = 10});
  }
  for (int i = 0; i < 5; ++i) {
    hetero.push_back(
        {.model = "resnet-152", .batch = 100, .num_batches = 10});
  }
  const auto timer_het = bench::RunCpuTimerAblation(opts, hetero, "fair", q);
  const auto stats = bench::PerJobQuantumStats(timer_het, hetero.size());

  metrics::Table t2({"Client id", "Model", "Mean GPU dur/quantum (us)"});
  metrics::Series means;
  for (std::size_t i = 0; i < hetero.size(); ++i) {
    const auto it = stats.find(static_cast<gpusim::JobId>(i));
    if (it == stats.end()) continue;
    means.Add(it->second.mean_us);
    t2.AddRow({std::to_string(i), hetero[i].model,
               metrics::Table::Num(it->second.mean_us, 0)});
  }
  t2.Print(std::cout);
  std::cout << "\nGPU duration/quantum spread under the CPU timer: "
            << metrics::Table::Num(means.Min(), 0) << " - "
            << metrics::Table::Num(means.Max(), 0) << " us (CV "
            << metrics::Table::Pct(means.Cv()) << ")\n"
            << "Expected shape: the CPU timer yields unequal finish times\n"
               "and widely varying GPU durations — validating Olympian's\n"
               "offline-profiled, cost-based quanta.\n";
  return 0;
}
