// Gray-failure chaos sweep: fractional-capacity losses and network jitter
// that never trip a binary health check, with the router's latency-aware
// health scoring and brownout admission control on vs off.
//
// Four single-GPU servers under a seeded random gray-fault schedule
// (server-wide capacity losses + router<->server jitter windows; no
// crashes, no partitions — nothing a liveness probe alone would catch).
// Deadlined open-loop Poisson clients in two priority classes:
//
//   binary           probe heartbeats + consecutive-error detection only;
//                    slow-but-alive servers stay kHealthy and keep taking
//                    their full request share, which the deadline converts
//                    into timeouts.
//   scored           EWMA probe-RTT scoring vs a learned baseline; the
//                    hysteresis marks gray servers degraded and
//                    score-weighted routing shifts load toward fast
//                    replicas.
//   scored-brownout  scoring plus brownout admission control: when the
//                    cluster-wide score capacity drops, the lowest
//                    priority class is shed first and restored last.
//
// Headline gate (CI cluster-chaos-smoke): scored-brownout strictly
// dominates binary on goodput under the same seed, detection-latency p95
// stays bounded, and a same-seed repeat replays bit-identically. Scalars
// land in BENCH_gray_failure.json with the detection-latency distribution
// embedded under "histograms".

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "serving/cluster.h"

using namespace olympian;

namespace {

constexpr int kServers = 4;
constexpr int kClients = 8;
constexpr int kRequests = 12;

// Everything a determinism repeat must reproduce bit-for-bit.
struct GrayRun {
  std::vector<serving::ClusterClientResult> clients;
  metrics::RouterCounters counters;
  std::vector<sim::Duration> detection_latencies;
  sim::Duration makespan;
};

GrayRun RunGray(bool scoring, bool brownout,
                bench::SweepCase* record_engine = nullptr) {
  serving::ClusterOptions opts;
  opts.num_servers = kServers;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 61;
  opts.router.failover = true;
  opts.router.score.enabled = scoring;
  opts.router.brownout.enabled = brownout;
  // Engage when ~half the cluster's score capacity is gone (the default
  // 0.60 needs nearly every server gray at once before shedding starts).
  opts.router.brownout.enter_below = 0.75;
  opts.router.brownout.exit_above = 0.85;

  // Gray chaos only: capacity losses and jitter windows drawn from a
  // seeded plan. Every server stays up the whole run — a binary health
  // check has nothing to bite on.
  fault::ServerFaultPlan::RandomOptions ro;
  ro.horizon = sim::Duration::Seconds(4.0);
  ro.num_servers = kServers;
  ro.expected_capacity_losses = 7.0;
  ro.mean_capacity_window = sim::Duration::Millis(700);
  ro.capacity_low = 0.10;
  ro.capacity_high = 0.30;
  ro.expected_jitter = 3.0;
  ro.mean_jitter_window = sim::Duration::Millis(300);
  ro.jitter_factor_low = 3.0;
  ro.jitter_factor_high = 8.0;
  opts.faults = fault::ServerFaultPlan::Random(ro, 4242);

  serving::Cluster cluster(opts);

  std::vector<serving::ClusterClientSpec> clients;
  for (int i = 0; i < kClients; ++i) {
    serving::ClusterClientSpec c;
    c.request.model = "googlenet";
    c.request.batch = 8;
    c.request.num_batches = kRequests;
    c.request.priority = i % 2;  // two classes: brownout sheds 0 first
    c.request.deadline = sim::Duration::Millis(700);
    c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
    c.arrivals.rate_rps = 2.5;
    clients.push_back(c);
  }

  GrayRun run;
  run.clients = cluster.Run(clients);
  run.counters = cluster.counters();
  run.detection_latencies = cluster.router().detection_latencies();
  run.makespan = cluster.makespan();
  if (record_engine != nullptr) record_engine->RecordEngine(cluster.engine());
  return run;
}

double Metric(const bench::SweepCase& r, const std::string& key) {
  for (const auto& [k, v] : r.metrics) {
    if (k == key) return v;
  }
  return 0.0;
}

bool SameRun(const GrayRun& a, const GrayRun& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    if (a.clients[i].finish_time != b.clients[i].finish_time) return false;
    if (a.clients[i].request_latency_ms != b.clients[i].request_latency_ms) {
      return false;
    }
    if (a.clients[i].request_status != b.clients[i].request_status) {
      return false;
    }
  }
  if (a.detection_latencies != b.detection_latencies) return false;
  if (a.makespan != b.makespan) return false;
  for (const auto& f : metrics::RouterCounters::Fields()) {
    if (a.counters.*(f.member) != b.counters.*(f.member)) return false;
  }
  return true;
}

// Goodput: fraction of issued requests that completed in time (kOk or
// kFailedRetried; timeouts, sheds and failures all count against it).
double Goodput(const GrayRun& run) {
  int total = 0, served = 0;
  for (const auto& r : run.clients) {
    total += static_cast<int>(r.request_status.size());
    served += r.requests_completed;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(served) / static_cast<double>(total);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Gray-failure chaos: capacity loss + jitter, health scoring on/off",
      "robustness extension");

  struct Case {
    const char* name;
    bool scoring;
    bool brownout;
  };
  const Case kCases[] = {
      {"binary", false, false},
      {"scored", true, false},
      {"scored-brownout", true, true},
  };

  bench::SweepRunner sweep("gray_failure");
  for (const Case& cfg : kCases) {
    sweep.Add(cfg.name, [cfg](bench::SweepCase& out) {
      const GrayRun run = RunGray(cfg.scoring, cfg.brownout, &out);
      out.Set("goodput", Goodput(run));

      metrics::Series latency;
      int timed_out = 0, rejected = 0;
      for (const auto& r : run.clients) {
        for (const double ms : r.request_latency_ms) latency.Add(ms);
        for (const auto s : r.request_status) {
          timed_out += s == serving::RequestStatus::kTimedOut ? 1 : 0;
          rejected += s == serving::RequestStatus::kRejected ? 1 : 0;
        }
      }
      out.Set("p99_ms", latency.Percentile(99));
      out.Set("makespan_s", run.makespan.seconds());
      out.Set("timed_out", static_cast<double>(timed_out));
      out.Set("rejected", static_cast<double>(rejected));
      const auto& c = run.counters;
      out.Set("capacity_losses", static_cast<double>(c.capacity_losses));
      out.Set("jitter_windows", static_cast<double>(c.jitter_windows));
      out.Set("score_degrades", static_cast<double>(c.score_degrade_events));
      out.Set("score_recovers", static_cast<double>(c.score_recover_events));
      out.Set("brownout_entries", static_cast<double>(c.brownout_entries));
      out.Set("brownout_exits", static_cast<double>(c.brownout_exits));
      out.Set("shed_brownout", static_cast<double>(c.requests_shed_brownout));
      // Gray faults must never look like outages: the binary liveness
      // machinery sees nothing.
      out.Set("down_events", static_cast<double>(c.server_down_events));

      // Detection latency (fault onset -> away-from-healthy edge) as a
      // distribution; zero incidents leave an empty histogram (binary).
      metrics::MetricRegistry::Histogram det;
      for (const sim::Duration d : run.detection_latencies) {
        det.Observe(d.millis());
      }
      out.Set("detection_p95_ms", det.count() > 0 ? det.Quantile(0.95) : 0.0);
      out.histograms = std::make_shared<bench::Json>(bench::Json::Object().Set(
          "detection_latency_ms", bench::HistogramJson(det)));

      // The headline case carries the cross-case gates: same-seed binary
      // baseline for the goodput-dominance claim, and a same-seed repeat
      // that must replay bit-identically (statuses, latencies, detection
      // incidents, every router counter).
      if (cfg.scoring && cfg.brownout) {
        const GrayRun binary = RunGray(false, false);
        const double delta = Goodput(run) - Goodput(binary);
        out.Set("goodput_delta_vs_binary", delta);
        out.Set("dominates_binary", delta > 0.0 ? 1.0 : 0.0);
        const GrayRun repeat = RunGray(cfg.scoring, cfg.brownout);
        out.Set("determinism_ok", SameRun(run, repeat) ? 1.0 : 0.0);
      }
    });
  }

  const auto& results = sweep.RunAll();
  metrics::Table t({"Case", "Goodput", "p99 (ms)", "Timed out", "Shed",
                    "Degrades", "Detect p95 (ms)"});
  for (const auto& r : results) {
    t.AddRow({r.name, metrics::Table::Pct(Metric(r, "goodput")),
              metrics::Table::Num(Metric(r, "p99_ms"), 0),
              metrics::Table::Num(Metric(r, "timed_out"), 0),
              metrics::Table::Num(Metric(r, "shed_brownout"), 0),
              metrics::Table::Num(Metric(r, "score_degrades"), 0),
              metrics::Table::Num(Metric(r, "detection_p95_ms"), 0)});
  }
  t.Print(std::cout);
  for (const auto& r : results) {
    if (std::string(r.name) == "scored-brownout") {
      if (Metric(r, "dominates_binary") < 1.0) {
        std::cout << "WARNING: scored-brownout goodput does not beat the "
                     "binary baseline (delta "
                  << Metric(r, "goodput_delta_vs_binary") << ")\n";
      }
      if (Metric(r, "determinism_ok") < 1.0) {
        std::cout << "WARNING: scored-brownout same-seed repeat diverged\n";
      }
    }
  }
  std::cout << "\n4 single-GPU servers, 8 Poisson clients (2 priority\n"
               "classes), 12 requests each, 700ms deadlines. Gray chaos\n"
               "drawn from a seeded plan: ~7 capacity losses (x0.10-0.30,\n"
               "~700ms) and ~3 jitter windows (x3-8, ~300ms) over 4s; no\n"
               "crashes or partitions. Goodput = fraction of requests\n"
               "completing in deadline.\n";
  return 0;
}
