// Reproduces Figure 18: priority scheduling on a homogeneous workload, with
// ten strictly decreasing priorities (serialization) and with a two-level
// priority split (high group fair-shares, then the low group runs).

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Priority scheduling, 10-level and 2-level", "Figure 18");

  bench::ProfileCache profiles;
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);

  // 10-level: client 0 highest priority.
  auto strict = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  for (std::size_t i = 0; i < strict.size(); ++i) {
    strict[i].priority = 10 - static_cast<int>(i);
  }
  // 2-level: first five high, rest low.
  auto two_level = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  for (std::size_t i = 0; i < two_level.size(); ++i) {
    two_level[i].priority = i < 5 ? 2 : 1;
  }

  serving::ServerOptions opts;
  opts.seed = 23;
  const auto r10 = bench::RunOlympian(opts, strict, "priority", q, profiles);
  const auto r2 = bench::RunOlympian(opts, two_level, "priority", q, profiles);

  metrics::Table t({"Client id", "10-level finish (s)", "2-level finish (s)"});
  for (std::size_t i = 0; i < strict.size(); ++i) {
    t.AddRow({std::to_string(i), bench::FmtSeconds(r10.clients[i].finish_time),
              bench::FmtSeconds(r2.clients[i].finish_time)});
  }
  t.Print(std::cout);

  std::cout << "\nExpected shape: 10-level serializes the jobs (client 0\n"
               "finishes near a solo run, client 9 last); 2-level lets the\n"
               "first five fair-share and finish together (~25 s in the\n"
               "paper), then the last five finish together.\n";
  return 0;
}
