// Reproduces §4.4's stability validation: total cost C_j and GPU duration
// D_j for Inception (batch 100) measured across many independent runs.
// Olympian's offline profiling is sound because both are highly stable.
//
// The 30 runs are independent (one Profiler, one seed each), so they fan
// out across OS threads via SweepRunner; per-run metrics land in
// BENCH_stability.json.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Cost and GPU-duration stability across runs",
                     "Section 4.4");

  const int kRuns = 30;
  bench::SweepRunner sweep("stability");
  for (int i = 0; i < kRuns; ++i) {
    sweep.Add("seed-" + std::to_string(1000 + i), [i](bench::SweepCase& out) {
      core::ProfilerOptions opts;
      opts.profile_runs = 1;
      opts.seed = 1000 + static_cast<std::uint64_t>(i);
      core::Profiler profiler(opts);
      const auto p = profiler.ProfileModel("inception-v4", 100);
      out.Set("total_cost_gops", p.TotalCost() / 1e9);
      out.Set("gpu_duration_s", p.GpuDuration().seconds());
      out.Set("solo_runtime_s", p.cost.solo_runtime.seconds());
    });
  }

  metrics::Series costs_s, durations_s, runtimes_s;
  for (const auto& r : sweep.RunAll()) {
    costs_s.Add(r.metrics[0].second);
    durations_s.Add(r.metrics[1].second);
    runtimes_s.Add(r.metrics[2].second);
  }

  metrics::Table t({"Quantity", "Mean", "Stddev", "CV", "Paper CV"});
  t.AddRow({"Total cost C (s)", metrics::Table::Num(costs_s.Mean(), 4),
            metrics::Table::Num(costs_s.Stddev(), 4),
            metrics::Table::Pct(costs_s.Cv()), "2.5%"});
  t.AddRow({"GPU duration D (s)", metrics::Table::Num(durations_s.Mean(), 4),
            metrics::Table::Num(durations_s.Stddev(), 4),
            metrics::Table::Pct(durations_s.Cv()), "1.7%"});
  t.AddRow({"Solo runtime (s)", metrics::Table::Num(runtimes_s.Mean(), 4),
            metrics::Table::Num(runtimes_s.Stddev(), 4),
            metrics::Table::Pct(runtimes_s.Cv()), "-"});
  t.Print(std::cout);
  std::cout << "\n" << kRuns << " independent runs (different seeds).\n"
            << "Expected shape: both C and D are stable to a few percent,\n"
               "validating offline profiling.\n";
  return 0;
}
