// Reproduces §4.4's stability validation: total cost C_j and GPU duration
// D_j for Inception (batch 100) measured across many independent runs.
// Olympian's offline profiling is sound because both are highly stable.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Cost and GPU-duration stability across runs",
                     "Section 4.4");

  const int kRuns = 30;
  metrics::Series costs_s, durations_s, runtimes_s;
  for (int i = 0; i < kRuns; ++i) {
    core::ProfilerOptions opts;
    opts.profile_runs = 1;
    opts.seed = 1000 + static_cast<std::uint64_t>(i);
    core::Profiler profiler(opts);
    const auto p = profiler.ProfileModel("inception-v4", 100);
    costs_s.Add(p.TotalCost() / 1e9);
    durations_s.Add(p.GpuDuration().seconds());
    runtimes_s.Add(p.cost.solo_runtime.seconds());
  }

  metrics::Table t({"Quantity", "Mean", "Stddev", "CV", "Paper CV"});
  t.AddRow({"Total cost C (s)", metrics::Table::Num(costs_s.Mean(), 4),
            metrics::Table::Num(costs_s.Stddev(), 4),
            metrics::Table::Pct(costs_s.Cv()), "2.5%"});
  t.AddRow({"GPU duration D (s)", metrics::Table::Num(durations_s.Mean(), 4),
            metrics::Table::Num(durations_s.Stddev(), 4),
            metrics::Table::Pct(durations_s.Cv()), "1.7%"});
  t.AddRow({"Solo runtime (s)", metrics::Table::Num(runtimes_s.Mean(), 4),
            metrics::Table::Num(runtimes_s.Stddev(), 4),
            metrics::Table::Pct(runtimes_s.Cv()), "-"});
  t.Print(std::cout);
  std::cout << "\n" << kRuns << " independent runs (different seeds).\n"
            << "Expected shape: both C and D are stable to a few percent,\n"
               "validating offline profiling.\n";
  return 0;
}
