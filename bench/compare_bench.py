#!/usr/bin/env python3
"""Threshold-compare a google-benchmark JSON run against a committed baseline.

Used by the CI perf-smoke job to catch hot-path regressions:

    ./build/bench/bench_micro --benchmark_filter='Gpu' \
        --benchmark_out=BENCH_micro.json --benchmark_out_format=json
    python3 bench/compare_bench.py BENCH_micro.json \
        bench/BENCH_micro_baseline.json --tolerance 0.25

Rules (per benchmark name present in BOTH files):
  * Throughput counters (rates: kernels/s, waves/s, items_per_second) must
    not drop by more than --tolerance (fraction) relative to the baseline.
  * allocs/kernel must not exceed the baseline value by more than
    --alloc-slack (absolute). The hot path is allocation-free in steady
    state, so this stays near zero and a pooling regression trips it long
    before it shows up as throughput.

Benchmarks present in only one file are reported but never fatal, so adding
a benchmark does not require regenerating the baseline in the same change.

Within-run gates (evaluated on the CURRENT file only, no baseline needed):
  * --min-ratio A:B:counter:floor  — counter(A) / counter(B) must be >=
    floor. Used to bound the observability overhead: the metrics-enabled
    twin of a benchmark must stay within a factor of its plain sibling
    (e.g. Observed:Plain:events/s:0.95 enforces <=5% overhead).
  * --max-counter NAME:counter:limit — an absolute ceiling on one counter
    of one benchmark (e.g. allocs/kernel of the observed GPU path must
    stay ~0 with the sampler live).
  * --min-counter NAME:counter:floor — an absolute floor. Used with the
    paired BM_*ObservabilityOverhead benchmarks, which interleave the plain
    and observed configuration within each iteration (so host drift
    cancels) and export the observed/plain rate ratio as a counter.
  * --require-counter NAME:counter — presence gate, no bound: the named
    counter must exist (and be numeric) on that benchmark/case in the
    CURRENT run. Used to pin artifact schema: a sweep case that silently
    stops emitting e.g. phase_mismatches or shards fails CI even though no
    threshold compares it.
All four flags are repeatable; benchmark names match exactly.

Exit status: 0 on pass, 1 on any regression, 2 on usage/parse errors.
"""

import argparse
import json
import sys

RATE_COUNTERS = ("kernels/s", "waves/s", "events/s", "items_per_second")
ALLOC_COUNTER = "allocs/kernel"
# Bookkeeping counters newer binaries emit but older baselines may predate
# (or the reverse): sharded-engine topology/accounting and per-case timing.
# A presence mismatch between baseline and current is a note, never a
# failure, so baselines do not need regenerating when these are added.
OPTIONAL_COUNTERS = ("shards", "sync_windows", "boundary_events",
                     "case_seconds")


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    # SweepRunner artifacts (BENCH_<sweep>.json): each case's scalar metrics
    # become that entry's counters, so the --min/--max-counter gates work on
    # sweep output exactly as on google-benchmark output.
    for c in doc.get("cases", []):
        entry = {k: v for k, v in c.get("metrics", {}).items()}
        entry["name"] = c["name"]
        out[c["name"]] = entry
    if not out:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def rates(entry):
    found = {}
    for key in RATE_COUNTERS:
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            found[key] = float(value)
    return found


def counter_value(benchmarks, name, counter):
    """Numeric counter of one benchmark, or None with a diagnostic."""
    entry = benchmarks.get(name)
    if entry is None:
        return None, f"benchmark {name!r} not in current run"
    value = entry.get(counter)
    if not isinstance(value, (int, float)):
        return None, f"{name}: counter {counter!r} missing or non-numeric"
    return float(value), None


def check_min_ratios(benchmarks, specs, failures):
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 4:
            print(f"error: bad --min-ratio spec {spec!r} "
                  f"(want A:B:counter:floor)", file=sys.stderr)
            sys.exit(2)
        name_a, name_b, counter, floor_s = parts
        try:
            floor = float(floor_s)
        except ValueError:
            print(f"error: bad floor in --min-ratio spec {spec!r}",
                  file=sys.stderr)
            sys.exit(2)
        val_a, err_a = counter_value(benchmarks, name_a, counter)
        val_b, err_b = counter_value(benchmarks, name_b, counter)
        if err_a or err_b:
            failures.append(err_a or err_b)
            continue
        if val_b == 0:
            failures.append(f"{name_b}: {counter} is 0, ratio undefined")
            continue
        ratio = val_a / val_b
        status = "ok" if ratio >= floor else "REGRESSION"
        if ratio < floor:
            failures.append(
                f"{name_a} vs {name_b}: {counter} ratio {ratio:.3f} "
                f"below floor {floor:.3f}")
        print(f"{status:>10}  {name_a}/{name_b}  {counter}  "
              f"{ratio:.3f}x (floor {floor:.3f}x)")


def check_counter_bounds(benchmarks, specs, failures, *, lower):
    kind = "--min-counter" if lower else "--max-counter"
    for spec in specs:
        # rsplit so benchmark names containing ':' (e.g. google-benchmark's
        # "BM_Foo/iterations:1") still parse as NAME:counter:bound.
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(f"error: bad {kind} spec {spec!r} "
                  f"(want NAME:counter:bound)", file=sys.stderr)
            sys.exit(2)
        name, counter, bound_s = parts
        try:
            bound = float(bound_s)
        except ValueError:
            print(f"error: bad bound in {kind} spec {spec!r}",
                  file=sys.stderr)
            sys.exit(2)
        value, err = counter_value(benchmarks, name, counter)
        if err:
            failures.append(err)
            continue
        ok = value >= bound if lower else value <= bound
        status = "ok" if ok else "REGRESSION"
        word = "floor" if lower else "limit"
        if not ok:
            failures.append(
                f"{name}: {counter} {value:.4f} violates {word} {bound:.4f}")
        print(f"{status:>10}  {name}  {counter}  "
              f"{value:.4f} ({word} {bound:.4f})")


def check_required_counters(benchmarks, specs, failures):
    for spec in specs:
        parts = spec.rsplit(":", 1)
        if len(parts) != 2:
            print(f"error: bad --require-counter spec {spec!r} "
                  f"(want NAME:counter)", file=sys.stderr)
            sys.exit(2)
        name, counter = parts
        value, err = counter_value(benchmarks, name, counter)
        if err:
            failures.append(err)
            print(f"{'MISSING':>10}  {name}  {counter}")
        else:
            print(f"{'ok':>10}  {name}  {counter}  present ({value:.4g})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced benchmark JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed fractional throughput drop (default 0.25)")
    ap.add_argument("--alloc-slack", type=float, default=0.05,
                    help="max allowed absolute allocs/kernel increase over "
                         "baseline (default 0.05)")
    ap.add_argument("--filter", default="",
                    help="only compare benchmarks whose name contains this")
    ap.add_argument("--min-ratio", action="append", default=[],
                    metavar="A:B:COUNTER:FLOOR",
                    help="require counter(A)/counter(B) >= FLOOR within the "
                         "current run (repeatable)")
    ap.add_argument("--max-counter", action="append", default=[],
                    metavar="NAME:COUNTER:LIMIT",
                    help="require a counter of one current-run benchmark to "
                         "stay <= LIMIT (repeatable)")
    ap.add_argument("--min-counter", action="append", default=[],
                    metavar="NAME:COUNTER:FLOOR",
                    help="require a counter of one current-run benchmark to "
                         "stay >= FLOOR (repeatable)")
    ap.add_argument("--require-counter", action="append", default=[],
                    metavar="NAME:COUNTER",
                    help="require the named counter to be present (numeric) "
                         "on one current-run benchmark (repeatable)")
    args = ap.parse_args()

    current = load_benchmarks(args.current)
    baseline = load_benchmarks(args.baseline)

    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if args.filter and args.filter not in name:
            continue
        cur = current.get(name)
        if cur is None:
            print(f"note: {name}: in baseline only, skipped")
            continue
        compared += 1
        base_rates = rates(base)
        cur_rates = rates(cur)
        # Optional counters: report one-sided presence, never fail on it.
        for key in OPTIONAL_COUNTERS:
            in_base = isinstance(base.get(key), (int, float))
            in_cur = isinstance(cur.get(key), (int, float))
            if in_base != in_cur:
                side = "baseline" if in_base else "current run"
                print(f"note: {name}: optional counter {key!r} only in {side}")
        for key, base_v in base_rates.items():
            cur_v = cur_rates.get(key)
            if cur_v is None:
                if key in OPTIONAL_COUNTERS:
                    print(f"note: {name}: optional counter {key!r} absent "
                          f"from current run, skipped")
                    continue
                failures.append(f"{name}: counter {key} missing from current run")
                continue
            ratio = cur_v / base_v
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {key} {cur_v:.3g} vs baseline {base_v:.3g} "
                    f"({ratio:.2f}x, floor {1.0 - args.tolerance:.2f}x)")
            print(f"{status:>10}  {name}  {key}  {ratio:.2f}x")
        base_alloc = base.get(ALLOC_COUNTER)
        cur_alloc = cur.get(ALLOC_COUNTER)
        if isinstance(base_alloc, (int, float)) and isinstance(
                cur_alloc, (int, float)):
            limit = base_alloc + args.alloc_slack
            status = "ok" if cur_alloc <= limit else "REGRESSION"
            if cur_alloc > limit:
                failures.append(
                    f"{name}: {ALLOC_COUNTER} {cur_alloc:.3f} exceeds "
                    f"baseline {base_alloc:.3f} + slack {args.alloc_slack}")
            print(f"{status:>10}  {name}  {ALLOC_COUNTER}  "
                  f"{cur_alloc:.3f} (limit {limit:.3f})")
    for name in sorted(set(current) - set(baseline)):
        if args.filter and args.filter not in name:
            continue
        print(f"note: {name}: new benchmark, no baseline")

    check_min_ratios(current, args.min_ratio, failures)
    check_counter_bounds(current, args.max_counter, failures, lower=False)
    check_counter_bounds(current, args.min_counter, failures, lower=True)
    check_required_counters(current, args.require_counter, failures)
    gates = (len(args.min_ratio) + len(args.max_counter) +
             len(args.min_counter) + len(args.require_counter))

    if compared == 0 and gates == 0:
        print("error: nothing compared (filter too strict?)", file=sys.stderr)
        return 2
    if failures:
        print("\nPerf regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nAll checks passed ({compared} baseline comparisons, "
          f"{gates} within-run gates).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
