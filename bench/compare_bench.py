#!/usr/bin/env python3
"""Threshold-compare a google-benchmark JSON run against a committed baseline.

Used by the CI perf-smoke job to catch hot-path regressions:

    ./build/bench/bench_micro --benchmark_filter='Gpu' \
        --benchmark_out=BENCH_micro.json --benchmark_out_format=json
    python3 bench/compare_bench.py BENCH_micro.json \
        bench/BENCH_micro_baseline.json --tolerance 0.25

Rules (per benchmark name present in BOTH files):
  * Throughput counters (rates: kernels/s, waves/s, items_per_second) must
    not drop by more than --tolerance (fraction) relative to the baseline.
  * allocs/kernel must not exceed the baseline value by more than
    --alloc-slack (absolute). The hot path is allocation-free in steady
    state, so this stays near zero and a pooling regression trips it long
    before it shows up as throughput.

Benchmarks present in only one file are reported but never fatal, so adding
a benchmark does not require regenerating the baseline in the same change.

Exit status: 0 on pass, 1 on any regression, 2 on usage/parse errors.
"""

import argparse
import json
import sys

RATE_COUNTERS = ("kernels/s", "waves/s", "items_per_second")
ALLOC_COUNTER = "allocs/kernel"


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    if not out:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def rates(entry):
    found = {}
    for key in RATE_COUNTERS:
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            found[key] = float(value)
    return found


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced benchmark JSON")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max allowed fractional throughput drop (default 0.25)")
    ap.add_argument("--alloc-slack", type=float, default=0.05,
                    help="max allowed absolute allocs/kernel increase over "
                         "baseline (default 0.05)")
    ap.add_argument("--filter", default="",
                    help="only compare benchmarks whose name contains this")
    args = ap.parse_args()

    current = load_benchmarks(args.current)
    baseline = load_benchmarks(args.baseline)

    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if args.filter and args.filter not in name:
            continue
        cur = current.get(name)
        if cur is None:
            print(f"note: {name}: in baseline only, skipped")
            continue
        compared += 1
        base_rates = rates(base)
        cur_rates = rates(cur)
        for key, base_v in base_rates.items():
            cur_v = cur_rates.get(key)
            if cur_v is None:
                failures.append(f"{name}: counter {key} missing from current run")
                continue
            ratio = cur_v / base_v
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {key} {cur_v:.3g} vs baseline {base_v:.3g} "
                    f"({ratio:.2f}x, floor {1.0 - args.tolerance:.2f}x)")
            print(f"{status:>10}  {name}  {key}  {ratio:.2f}x")
        base_alloc = base.get(ALLOC_COUNTER)
        cur_alloc = cur.get(ALLOC_COUNTER)
        if isinstance(base_alloc, (int, float)) and isinstance(
                cur_alloc, (int, float)):
            limit = base_alloc + args.alloc_slack
            status = "ok" if cur_alloc <= limit else "REGRESSION"
            if cur_alloc > limit:
                failures.append(
                    f"{name}: {ALLOC_COUNTER} {cur_alloc:.3f} exceeds "
                    f"baseline {base_alloc:.3f} + slack {args.alloc_slack}")
            print(f"{status:>10}  {name}  {ALLOC_COUNTER}  "
                  f"{cur_alloc:.3f} (limit {limit:.3f})")
    for name in sorted(set(current) - set(baseline)):
        if args.filter and args.filter not in name:
            continue
        print(f"note: {name}: new benchmark, no baseline")

    if compared == 0:
        print("error: nothing compared (filter too strict?)", file=sys.stderr)
        return 2
    if failures:
        print("\nPerf regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nAll {compared} compared benchmarks within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
