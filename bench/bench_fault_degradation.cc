// Graceful-degradation sweep: how request outcomes and makespan degrade as
// the injected fault rate rises. Four tenants with request deadlines run
// under the Olympian fair scheduler on a two-GPU server with device
// failover while a seeded random FaultPlan throws kernel failures, device
// hangs, and allocation faults at both devices.
//
// Expected shape: goodput (ok + failed_retried) decays gradually with the
// fault rate — never a cliff or a stall — and every request still ends in a
// definite terminal state, so the outcome columns always sum to the total.
//
// Each scale is one sweep case in BENCH_fault_degradation.json: outcome
// counters, an SLO block (RecordStatuses), and the health monitor's
// per-incident repair-time distribution (hangs outliving the escalation
// budget go kDown and come back through the recovery pipeline) embedded
// under "histograms" as device_mttr_ms.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace olympian;

namespace {

double Metric(const bench::SweepCase& r, const std::string& key) {
  for (const auto& [k, v] : r.metrics) {
    if (k == key) return v;
  }
  return 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Request outcomes vs injected fault rate",
                     "robustness extension");

  const double kScales[] = {0.0, 1.0, 2.0, 4.0, 8.0};

  bench::SweepRunner sweep("fault_degradation");
  for (const double scale : kScales) {
    const std::string name = "scale-" + metrics::Table::Num(scale, 0);
    sweep.Add(name, [scale](bench::SweepCase& out) {
      serving::ServerOptions opts;
      opts.seed = 41;
      opts.num_gpus = 2;
      opts.degradation.retry.max_retries = 3;
      // Health monitor on: long hangs escalate kDegraded -> kDown, victims
      // fail over to the sibling device, and the repaired device comes
      // back through the recovery pipeline — producing the per-incident
      // repair times recorded below.
      opts.failover.enabled = true;
      if (scale > 0.0) {
        fault::FaultPlan::RandomOptions ro;
        ro.horizon = sim::Duration::Seconds(20.0);
        ro.num_gpus = 2;
        ro.expected_kernel_failures = 4.0 * scale;
        ro.expected_hangs = 1.0 * scale;
        ro.mean_hang = sim::Duration::Millis(400);
        ro.expected_alloc_faults = 2.0 * scale;
        ro.mean_alloc_window = sim::Duration::Millis(20);
        opts.faults = fault::FaultPlan::Random(ro, 1234);
      }

      // Every case builds its own profiler/scheduler: sweep cases run on
      // worker threads and must not share a ProfileCache.
      bench::ProfileCache profiles;
      const auto& profile = profiles.Get("resnet-152", 20);
      const auto q = sim::Duration::Micros(800);

      serving::Experiment exp(opts);
      core::Scheduler sched(exp.env(), exp.gpu(),
                            std::make_unique<core::FairPolicy>());
      sched.SetProfile(profile.key, &profile.cost,
                       core::Profiler::ThresholdFor(profile, q));
      exp.SetHooks(&sched);

      serving::ClientSpec tenant{.model = "resnet-152", .batch = 20,
                                 .num_batches = 8};
      tenant.deadline = sim::Duration::Seconds(3.0);
      const auto results =
          exp.Run(std::vector<serving::ClientSpec>(4, tenant));
      out.RecordStatuses(results);

      int ok = 0, retried = 0, timed_out = 0, failed = 0, rejected = 0;
      for (const auto& r : results) {
        ok += r.CountStatus(serving::RequestStatus::kOk);
        retried += r.CountStatus(serving::RequestStatus::kFailedRetried);
        timed_out += r.CountStatus(serving::RequestStatus::kTimedOut);
        failed += r.CountStatus(serving::RequestStatus::kFailed);
        rejected += r.CountStatus(serving::RequestStatus::kRejected);
      }
      out.Set("fault_scale", scale);
      out.Set("ok", static_cast<double>(ok));
      out.Set("retried", static_cast<double>(retried));
      out.Set("timed_out", static_cast<double>(timed_out));
      out.Set("failed", static_cast<double>(failed));
      out.Set("rejected", static_cast<double>(rejected));
      out.Set("goodput", static_cast<double>(ok + retried) /
                             static_cast<double>(ok + retried + timed_out +
                                                 failed + rejected));
      out.Set("retries", static_cast<double>(exp.counters().retries));
      out.Set("makespan_s", exp.makespan().seconds());

      // Per-incident repair times (down -> readmitted) from the device
      // health monitor, as a distribution rather than one mean.
      metrics::MetricRegistry::Histogram mttr;
      std::uint64_t down_events = 0;
      if (exp.health() != nullptr) {  // nullptr unless failover.enabled
        for (std::size_t g = 0; g < exp.num_gpus(); ++g) {
          const auto& stats = exp.health()->stats(g);
          down_events += stats.down_events;
          for (const sim::Duration d : stats.mttr_incidents) {
            mttr.Observe(d.millis());
          }
        }
      }
      out.Set("down_events", static_cast<double>(down_events));
      out.Set("mttr_p95_ms", mttr.count() > 0 ? mttr.Quantile(0.95) : 0.0);
      out.histograms = std::make_shared<bench::Json>(
          bench::Json::Object().Set("device_mttr_ms",
                                    bench::HistogramJson(mttr)));
    });
  }

  const auto& results = sweep.RunAll();
  metrics::Table t({"Fault scale", "ok", "retried", "timed out", "failed",
                    "rejected", "retries", "MTTR p95 (ms)", "makespan (s)"});
  for (const auto& r : results) {
    t.AddRow({metrics::Table::Num(Metric(r, "fault_scale"), 1),
              metrics::Table::Num(Metric(r, "ok"), 0),
              metrics::Table::Num(Metric(r, "retried"), 0),
              metrics::Table::Num(Metric(r, "timed_out"), 0),
              metrics::Table::Num(Metric(r, "failed"), 0),
              metrics::Table::Num(Metric(r, "rejected"), 0),
              metrics::Table::Num(Metric(r, "retries"), 0),
              metrics::Table::Num(Metric(r, "mttr_p95_ms"), 0),
              metrics::Table::Num(Metric(r, "makespan_s"), 3)});
  }
  t.Print(std::cout);
  std::cout << "\n4 clients x 8 requests on a 2-GPU server with device\n"
               "failover, 3s deadlines, <=3 retries per request; faults\n"
               "drawn from a seeded random plan (scale multiplies the base\n"
               "rates). Outcome columns sum to 32.\n";
  return 0;
}
