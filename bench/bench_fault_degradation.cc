// Graceful-degradation sweep: how request outcomes and makespan degrade as
// the injected fault rate rises. Four tenants with request deadlines run
// under the Olympian fair scheduler while a seeded random FaultPlan throws
// kernel failures, device hangs, and allocation faults at the device.
//
// Expected shape: goodput (ok + failed_retried) decays gradually with the
// fault rate — never a cliff or a stall — and every request still ends in a
// definite terminal state, so the outcome columns always sum to the total.

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/table.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Request outcomes vs injected fault rate",
                     "robustness extension");

  bench::ProfileCache profiles;
  const auto& profile = profiles.Get("resnet-152", 20);
  const auto q = sim::Duration::Micros(800);

  metrics::Table t({"Fault scale", "ok", "retried", "timed out", "failed",
                    "retries", "makespan (s)"});

  for (const double scale : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    serving::ServerOptions opts;
    opts.seed = 41;
    opts.degradation.retry.max_retries = 3;
    if (scale > 0.0) {
      fault::FaultPlan::RandomOptions ro;
      ro.horizon = sim::Duration::Seconds(20.0);
      ro.expected_kernel_failures = 4.0 * scale;
      ro.expected_hangs = 1.0 * scale;
      ro.mean_hang = sim::Duration::Millis(400);
      ro.expected_alloc_faults = 2.0 * scale;
      ro.mean_alloc_window = sim::Duration::Millis(20);
      opts.faults = fault::FaultPlan::Random(ro, 1234);
    }

    serving::Experiment exp(opts);
    core::Scheduler sched(exp.env(), exp.gpu(),
                          std::make_unique<core::FairPolicy>());
    sched.SetProfile(profile.key, &profile.cost,
                     core::Profiler::ThresholdFor(profile, q));
    exp.SetHooks(&sched);

    serving::ClientSpec tenant{.model = "resnet-152", .batch = 20,
                               .num_batches = 8};
    tenant.deadline = sim::Duration::Seconds(3.0);
    const auto results =
        exp.Run(std::vector<serving::ClientSpec>(4, tenant));

    int ok = 0, retried = 0, timed_out = 0, failed = 0;
    for (const auto& r : results) {
      ok += r.CountStatus(serving::RequestStatus::kOk);
      retried += r.CountStatus(serving::RequestStatus::kFailedRetried);
      timed_out += r.CountStatus(serving::RequestStatus::kTimedOut);
      failed += r.CountStatus(serving::RequestStatus::kFailed);
    }
    t.AddRow({metrics::Table::Num(scale, 1), metrics::Table::Num(ok, 0),
              metrics::Table::Num(retried, 0),
              metrics::Table::Num(timed_out, 0),
              metrics::Table::Num(failed, 0),
              metrics::Table::Num(
                  static_cast<double>(exp.counters().retries), 0),
              metrics::Table::Num(exp.makespan().seconds(), 3)});
  }
  t.Print(std::cout);
  std::cout << "\n4 clients x 8 requests, 3s deadlines, <=3 retries per\n"
               "request; faults drawn from a seeded random plan (scale\n"
               "multiplies the base rates). Outcome columns sum to 32.\n";
  return 0;
}
