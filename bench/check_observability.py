#!/usr/bin/env python3
"""Validate the artifacts written by examples/observability_tour and
examples/latency_anatomy.

Used by the CI observability-tour job:

    ./build/examples/observability_tour
    python3 bench/check_observability.py

    ./build/examples/latency_anatomy 1 anatomy
    python3 bench/check_observability.py --anatomy anatomy

Default mode checks:
  * observability_trace.json is valid Chrome trace JSON; every record has
    the required fields; at least one request flow (ph s/t/f sharing an id)
    crosses >= 2 device tracks and is well-formed (one begin, one end,
    "bp":"e" on the terminator, hops monotone in time); the sampler's
    series appear as 'C' counter events with numeric args.value.
  * observability_metrics.prom parses as Prometheus text exposition: every
    sample belongs to a family with a # TYPE header, histogram buckets are
    cumulative and end at le="+Inf" with a count matching _count, and the
    expected olympian_* families are present.
  * observability_timeline.json parses, and every series has labeled
    points with strictly increasing timestamps.

--anatomy PREFIX checks <PREFIX>_blame.json (phase-sum integrity: zero
accounting-identity mismatches, internally consistent rows),
<PREFIX>_incidents.json (state-machine ordering injected <= detected <=
mitigated, recovery after detection, impact counts), and
<PREFIX>_trace.json (valid trace carrying incident-track events and 'C'
counter charts).

Exit status: 0 on pass, 1 on any failure, 2 when an artifact is missing.
"""

import json
import re
import sys

TRACE = "observability_trace.json"
PROM = "observability_metrics.prom"
TIMELINE = "observability_timeline.json"

failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL  {msg}")


def ok(msg):
    print(f"  ok  {msg}")


def load(path, parser):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return parser(f)
    except OSError as e:
        print(f"error: cannot read {path}: {e} — run observability_tour first",
              file=sys.stderr)
        sys.exit(2)


def check_trace():
    events = load(TRACE, json.load)
    if not isinstance(events, list) or not events:
        fail(f"{TRACE}: expected a non-empty JSON array")
        return
    for i, e in enumerate(events):
        for field in ("cat", "name", "pid", "tid", "ts", "ph"):
            if field not in e:
                fail(f"{TRACE}: event {i} missing {field!r}")
                return
    ok(f"{TRACE}: {len(events)} records, all with required fields")

    phases = {e["ph"] for e in events}
    for ph, what in (("X", "spans"), ("s", "flow begins"), ("f", "flow ends")):
        if ph not in phases:
            fail(f"{TRACE}: no {what} (ph={ph!r})")

    # Request flows: hops grouped by id must include one chain across >= 2
    # tracks, beginning once and ending once, monotone in time.
    flows = {}
    for e in events:
        if e["ph"] in ("s", "t", "f") and e["cat"] == "request":
            flows.setdefault(e["id"], []).append(e)
    if not flows:
        fail(f"{TRACE}: no request flow events")
        return
    crossing = None
    for fid, hops in flows.items():
        if len({h["tid"] for h in hops}) >= 2:
            crossing = fid
            break
    if crossing is None:
        fail(f"{TRACE}: no flow crosses device tracks")
        return
    hops = flows[crossing]
    if [h["ph"] for h in hops].count("s") != 1:
        fail(f"{TRACE}: flow {crossing} does not begin exactly once")
    if [h["ph"] for h in hops].count("f") != 1:
        fail(f"{TRACE}: flow {crossing} does not end exactly once")
    if hops[0]["ph"] != "s" or hops[-1]["ph"] != "f":
        fail(f"{TRACE}: flow {crossing} is not s .. f ordered")
    if any(b["ts"] < a["ts"] for a, b in zip(hops, hops[1:])):
        fail(f"{TRACE}: flow {crossing} hops go backward in time")
    if hops[-1].get("bp") != "e":
        fail(f"{TRACE}: flow {crossing} terminator lacks bp=e binding")
    ok(f"{TRACE}: flow {crossing} chains {len(hops)} hops across "
       f"{len({h['tid'] for h in hops})} tracks")

    check_counter_events(TRACE, events)


def check_counter_events(path, events):
    """The sampler's series must ride in the trace as 'C' counter events."""
    counters = [e for e in events if e["ph"] == "C"]
    if not counters:
        fail(f"{path}: no counter events (ph=C) — series not exported")
        return
    names = set()
    for e in counters:
        value = e.get("args", {}).get("value")
        if not isinstance(value, (int, float)):
            fail(f"{path}: counter event {e['name']!r} lacks numeric "
                 f"args.value")
            return
        names.add(e["name"])
    ok(f"{path}: {len(counters)} counter samples across {len(names)} charts")


SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})? (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$')


def check_prometheus():
    def read(f):
        return f.read().splitlines()

    lines = load(PROM, read)
    types = {}
    samples = []  # (name, labels, value)
    for i, line in enumerate(lines):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                fail(f"{PROM}:{i + 1}: bad TYPE header {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{PROM}:{i + 1}: unparseable sample {line!r}")
            continue
        samples.append((m.group("name"), m.group("labels") or "",
                        float(m.group("value").replace("+Inf", "inf"))))
    if failures:
        return

    def family(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    for name, labels, _ in samples:
        if family(name) not in types:
            fail(f"{PROM}: sample {name}{labels} has no # TYPE header")
    ok(f"{PROM}: {len(samples)} samples across {len(types)} typed families")

    # The run must have produced the core families.
    for want in ("olympian_requests_ok_total", "olympian_request_latency_ms",
                 "olympian_gpu_utilization", "olympian_device_health",
                 "olympian_hedge_wins_total"):
        if family(want) not in types and want not in types:
            fail(f"{PROM}: expected family {want} missing")

    # Histogram buckets: per (family, non-le labels) cumulative, ending at
    # +Inf with the _count value.
    hist = {}
    counts = {}
    for name, labels, value in samples:
        if name.endswith("_bucket"):
            base = labels[1:-1] if labels else ""
            parts = [p for p in base.split(",") if not p.startswith('le="')]
            le = [p for p in base.split(",") if p.startswith('le="')]
            key = (name[: -len("_bucket")], ",".join(parts))
            bound = le[0][4:-1] if le else ""
            hist.setdefault(key, []).append((bound, value))
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], (labels or "{}")[1:-1])] = value
    for (fam, lbl), buckets in hist.items():
        values = [v for _, v in buckets]
        if values != sorted(values):
            fail(f"{PROM}: {fam}{{{lbl}}} buckets are not cumulative")
        if buckets[-1][0] != "+Inf":
            fail(f"{PROM}: {fam}{{{lbl}}} does not end at le=+Inf")
        total = counts.get((fam, lbl))
        if total is not None and buckets[-1][1] != total:
            fail(f"{PROM}: {fam}{{{lbl}}} +Inf bucket {buckets[-1][1]} "
                 f"!= _count {total}")
    if hist:
        ok(f"{PROM}: {len(hist)} histogram series with cumulative buckets")
    else:
        fail(f"{PROM}: no histogram buckets found")


def check_timeline():
    doc = load(TIMELINE, json.load)
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail(f"{TIMELINE}: expected a non-empty 'series' array")
        return
    for s in series:
        for field in ("name", "labels", "points"):
            if field not in s:
                fail(f"{TIMELINE}: series missing {field!r}")
                return
    with_points = [s for s in series if s["points"]]
    if not with_points:
        fail(f"{TIMELINE}: every series is empty")
        return
    for s in with_points:
        ts = [p[0] for p in s["points"]]
        if ts != sorted(ts) or len(set(ts)) != len(ts):
            fail(f"{TIMELINE}: {s['name']} timestamps not strictly increasing")
    names = {s["name"] for s in series}
    for want in ("olympian_gpu_utilization", "olympian_pool_occupancy"):
        if want not in names:
            fail(f"{TIMELINE}: expected series {want} missing")
    ok(f"{TIMELINE}: {len(series)} series, {len(with_points)} with samples")


PHASES = ("router_hop", "router_queue", "admission", "placer_decision",
          "reload", "batcher_wait", "gpu_queue", "gpu_compute", "backoff",
          "hedge_overhead", "failover_readmit", "response_hop")


def check_blame(prefix):
    path = f"{prefix}_blame.json"
    doc = load(path, json.load)
    for field in ("slo_ms", "requests", "violations", "phase_sum_mismatches",
                  "rows"):
        if field not in doc:
            fail(f"{path}: missing {field!r}")
            return
    # THE integrity gate: every request's phase charges tiled its lifetime
    # bit-exactly. A single missed charge site shows up here.
    if doc["phase_sum_mismatches"] != 0:
        fail(f"{path}: {doc['phase_sum_mismatches']} accounting-identity "
             f"mismatches (phase sum != latency)")
    if doc["requests"] <= 0:
        fail(f"{path}: no requests accounted")
    rows = doc["rows"]
    if not rows:
        fail(f"{path}: empty blame table")
        return
    req_total = viol_total = 0
    for r in rows:
        for field in ("server", "model", "requests", "violations",
                      "phases_ns", "violation_phases_ns"):
            if field not in r:
                fail(f"{path}: row missing {field!r}")
                return
        req_total += r["requests"]
        viol_total += r["violations"]
        if r["violations"] > r["requests"]:
            fail(f"{path}: server {r['server']} has more violations than "
                 f"requests")
        for phase, ns in r["phases_ns"].items():
            if phase not in PHASES:
                fail(f"{path}: unknown phase {phase!r}")
            if ns < 0:
                fail(f"{path}: negative charge for {phase!r}")
        # The violation-restricted sums are a subset of the totals.
        for phase, ns in r["violation_phases_ns"].items():
            if ns > r["phases_ns"].get(phase, 0):
                fail(f"{path}: violation_phases_ns[{phase}] exceeds "
                     f"phases_ns[{phase}]")
        if r["violations"] > 0:
            if r.get("dominant_phase") not in PHASES:
                fail(f"{path}: violating row lacks a valid dominant_phase")
            if sum(r.get("dominant_counts", {}).values()) != r["violations"]:
                fail(f"{path}: dominant_counts do not sum to violations")
    if req_total != doc["requests"]:
        fail(f"{path}: row requests {req_total} != total {doc['requests']}")
    if viol_total != doc["violations"]:
        fail(f"{path}: row violations {viol_total} != total "
             f"{doc['violations']}")
    if not failures:
        ok(f"{path}: {len(rows)} rows, {doc['requests']} requests, "
           f"{doc['violations']} violations, identity holds")


def check_incidents(prefix):
    path = f"{prefix}_incidents.json"
    doc = load(path, json.load)
    incidents = doc.get("incidents")
    if not isinstance(incidents, list) or not incidents:
        fail(f"{path}: expected a non-empty 'incidents' array")
        return
    detected = mitigated = 0
    for inc in incidents:
        for field in ("server", "kind", "injected_ns", "window_ns",
                      "detected_ns", "mitigated_ns", "recovered_ns",
                      "mitigation", "requests_impacted", "failures_impacted",
                      "goodput_dip"):
            if field not in inc:
                fail(f"{path}: incident missing {field!r}")
                return
        # State machine ordering: injected -> detected -> mitigated, and
        # recovery (when seen) comes after detection.
        if inc["detected_ns"] >= 0:
            detected += 1
            if inc["detected_ns"] < inc["injected_ns"]:
                fail(f"{path}: {inc['kind']}@{inc['server']} detected "
                     f"before injection")
            if 0 <= inc["recovered_ns"] < inc["detected_ns"]:
                fail(f"{path}: {inc['kind']}@{inc['server']} recovered "
                     f"before detection")
        if inc["mitigated_ns"] >= 0:
            mitigated += 1
            if inc["detected_ns"] < 0:
                fail(f"{path}: {inc['kind']}@{inc['server']} mitigated "
                     f"but never detected")
            elif inc["mitigated_ns"] < inc["detected_ns"]:
                fail(f"{path}: {inc['kind']}@{inc['server']} mitigated "
                     f"before detection")
            if not inc["mitigation"]:
                fail(f"{path}: mitigated incident lacks a mitigation label")
        if inc["failures_impacted"] > inc["requests_impacted"]:
            fail(f"{path}: more failures than requests attributed")
    if detected == 0:
        fail(f"{path}: no incident was ever detected")
    if mitigated == 0:
        fail(f"{path}: no incident was ever mitigated")
    if "total_requests" not in doc or doc["total_requests"] <= 0:
        fail(f"{path}: missing or zero total_requests")
    if not failures:
        ok(f"{path}: {len(incidents)} incidents "
           f"({detected} detected, {mitigated} mitigated)")


def check_anatomy_trace(prefix):
    path = f"{prefix}_trace.json"
    events = load(path, json.load)
    if not isinstance(events, list) or not events:
        fail(f"{path}: expected a non-empty JSON array")
        return
    incident_events = [e for e in events if e.get("cat") == "incident"]
    spans = [e for e in incident_events if e["ph"] == "X"]
    marks = [e for e in incident_events if e["ph"] == "i"]
    if not spans:
        fail(f"{path}: no incident spans on the incident track")
    if not marks:
        fail(f"{path}: no detection/mitigation/recovery marks")
    tracks = {e["tid"] for e in incident_events}
    if len(tracks) > 1:
        fail(f"{path}: incident events scattered across tracks {tracks}")
    if not failures:
        ok(f"{path}: {len(spans)} incident spans, {len(marks)} marks")
    check_counter_events(path, events)


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "--anatomy":
        prefix = sys.argv[2]
        check_blame(prefix)
        check_incidents(prefix)
        check_anatomy_trace(prefix)
    else:
        check_trace()
        check_prometheus()
        check_timeline()
    if failures:
        print(f"\n{len(failures)} observability check(s) failed",
              file=sys.stderr)
        return 1
    print("\nAll observability artifacts check out.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
