#!/usr/bin/env python3
"""Validate the artifacts written by examples/observability_tour.

Used by the CI observability-tour job:

    ./build/examples/observability_tour
    python3 bench/check_observability.py

Checks:
  * observability_trace.json is valid Chrome trace JSON; every record has
    the required fields; at least one request flow (ph s/t/f sharing an id)
    crosses >= 2 device tracks and is well-formed (one begin, one end,
    "bp":"e" on the terminator, hops monotone in time).
  * observability_metrics.prom parses as Prometheus text exposition: every
    sample belongs to a family with a # TYPE header, histogram buckets are
    cumulative and end at le="+Inf" with a count matching _count, and the
    expected olympian_* families are present.
  * observability_timeline.json parses, and every series has labeled
    points with strictly increasing timestamps.

Exit status: 0 on pass, 1 on any failure, 2 when an artifact is missing.
"""

import json
import re
import sys

TRACE = "observability_trace.json"
PROM = "observability_metrics.prom"
TIMELINE = "observability_timeline.json"

failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL  {msg}")


def ok(msg):
    print(f"  ok  {msg}")


def load(path, parser):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return parser(f)
    except OSError as e:
        print(f"error: cannot read {path}: {e} — run observability_tour first",
              file=sys.stderr)
        sys.exit(2)


def check_trace():
    events = load(TRACE, json.load)
    if not isinstance(events, list) or not events:
        fail(f"{TRACE}: expected a non-empty JSON array")
        return
    for i, e in enumerate(events):
        for field in ("cat", "name", "pid", "tid", "ts", "ph"):
            if field not in e:
                fail(f"{TRACE}: event {i} missing {field!r}")
                return
    ok(f"{TRACE}: {len(events)} records, all with required fields")

    phases = {e["ph"] for e in events}
    for ph, what in (("X", "spans"), ("s", "flow begins"), ("f", "flow ends")):
        if ph not in phases:
            fail(f"{TRACE}: no {what} (ph={ph!r})")

    # Request flows: hops grouped by id must include one chain across >= 2
    # tracks, beginning once and ending once, monotone in time.
    flows = {}
    for e in events:
        if e["ph"] in ("s", "t", "f") and e["cat"] == "request":
            flows.setdefault(e["id"], []).append(e)
    if not flows:
        fail(f"{TRACE}: no request flow events")
        return
    crossing = None
    for fid, hops in flows.items():
        if len({h["tid"] for h in hops}) >= 2:
            crossing = fid
            break
    if crossing is None:
        fail(f"{TRACE}: no flow crosses device tracks")
        return
    hops = flows[crossing]
    if [h["ph"] for h in hops].count("s") != 1:
        fail(f"{TRACE}: flow {crossing} does not begin exactly once")
    if [h["ph"] for h in hops].count("f") != 1:
        fail(f"{TRACE}: flow {crossing} does not end exactly once")
    if hops[0]["ph"] != "s" or hops[-1]["ph"] != "f":
        fail(f"{TRACE}: flow {crossing} is not s .. f ordered")
    if any(b["ts"] < a["ts"] for a, b in zip(hops, hops[1:])):
        fail(f"{TRACE}: flow {crossing} hops go backward in time")
    if hops[-1].get("bp") != "e":
        fail(f"{TRACE}: flow {crossing} terminator lacks bp=e binding")
    ok(f"{TRACE}: flow {crossing} chains {len(hops)} hops across "
       f"{len({h['tid'] for h in hops})} tracks")


SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?P<labels>\{[^}]*\})? (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$')


def check_prometheus():
    def read(f):
        return f.read().splitlines()

    lines = load(PROM, read)
    types = {}
    samples = []  # (name, labels, value)
    for i, line in enumerate(lines):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                fail(f"{PROM}:{i + 1}: bad TYPE header {line!r}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"{PROM}:{i + 1}: unparseable sample {line!r}")
            continue
        samples.append((m.group("name"), m.group("labels") or "",
                        float(m.group("value").replace("+Inf", "inf"))))
    if failures:
        return

    def family(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    for name, labels, _ in samples:
        if family(name) not in types:
            fail(f"{PROM}: sample {name}{labels} has no # TYPE header")
    ok(f"{PROM}: {len(samples)} samples across {len(types)} typed families")

    # The run must have produced the core families.
    for want in ("olympian_requests_ok_total", "olympian_request_latency_ms",
                 "olympian_gpu_utilization", "olympian_device_health",
                 "olympian_hedge_wins_total"):
        if family(want) not in types and want not in types:
            fail(f"{PROM}: expected family {want} missing")

    # Histogram buckets: per (family, non-le labels) cumulative, ending at
    # +Inf with the _count value.
    hist = {}
    counts = {}
    for name, labels, value in samples:
        if name.endswith("_bucket"):
            base = labels[1:-1] if labels else ""
            parts = [p for p in base.split(",") if not p.startswith('le="')]
            le = [p for p in base.split(",") if p.startswith('le="')]
            key = (name[: -len("_bucket")], ",".join(parts))
            bound = le[0][4:-1] if le else ""
            hist.setdefault(key, []).append((bound, value))
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], (labels or "{}")[1:-1])] = value
    for (fam, lbl), buckets in hist.items():
        values = [v for _, v in buckets]
        if values != sorted(values):
            fail(f"{PROM}: {fam}{{{lbl}}} buckets are not cumulative")
        if buckets[-1][0] != "+Inf":
            fail(f"{PROM}: {fam}{{{lbl}}} does not end at le=+Inf")
        total = counts.get((fam, lbl))
        if total is not None and buckets[-1][1] != total:
            fail(f"{PROM}: {fam}{{{lbl}}} +Inf bucket {buckets[-1][1]} "
                 f"!= _count {total}")
    if hist:
        ok(f"{PROM}: {len(hist)} histogram series with cumulative buckets")
    else:
        fail(f"{PROM}: no histogram buckets found")


def check_timeline():
    doc = load(TIMELINE, json.load)
    series = doc.get("series")
    if not isinstance(series, list) or not series:
        fail(f"{TIMELINE}: expected a non-empty 'series' array")
        return
    for s in series:
        for field in ("name", "labels", "points"):
            if field not in s:
                fail(f"{TIMELINE}: series missing {field!r}")
                return
    with_points = [s for s in series if s["points"]]
    if not with_points:
        fail(f"{TIMELINE}: every series is empty")
        return
    for s in with_points:
        ts = [p[0] for p in s["points"]]
        if ts != sorted(ts) or len(set(ts)) != len(ts):
            fail(f"{TIMELINE}: {s['name']} timestamps not strictly increasing")
    names = {s["name"] for s in series}
    for want in ("olympian_gpu_utilization", "olympian_pool_occupancy"):
        if want not in names:
            fail(f"{TIMELINE}: expected series {want} missing")
    ok(f"{TIMELINE}: {len(series)} series, {len(with_points)} with samples")


def main():
    check_trace()
    check_prometheus()
    check_timeline()
    if failures:
        print(f"\n{len(failures)} observability check(s) failed",
              file=sys.stderr)
        return 1
    print("\nAll observability artifacts check out.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
