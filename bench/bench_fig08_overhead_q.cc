// Reproduces Figure 8: the Overhead-Q curves for the seven DNNs — measured
// overhead of Olympian (two instances, fair sharing) vs stock TF-Serving,
// as a function of the quantum Q. Overhead decreases as Q grows.

#include <iostream>

#include "harness.h"
#include "models/model_zoo.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Overhead-Q curves for the seven DNNs", "Figure 8");

  bench::ProfileCache profiles;
  std::vector<std::string> headers{"Q (us)"};
  for (const auto& spec : models::AllModels()) headers.push_back(spec.name);
  metrics::Table t(std::move(headers));

  // Compute all curves (this is the profiler's own measurement loop).
  std::vector<const core::ModelProfile*> all;
  for (const auto& spec : models::AllModels()) {
    all.push_back(&profiles.GetWithCurve(spec.name, spec.paper_batch));
  }

  const std::size_t points = all.front()->overhead_q.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{
        metrics::Table::Num(all.front()->overhead_q[i].first.micros(), 0)};
    for (const auto* p : all) {
      row.push_back(metrics::Table::Pct(p->overhead_q[i].second));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);

  const auto q25 = core::Profiler::SelectQ(all, 0.025);
  const auto q20 = core::Profiler::SelectQ(all, 0.020);
  std::cout << "\nQ for 2.5% tolerance across all models: "
            << metrics::Table::Num(q25.micros(), 0) << " us (paper: ~1190 us)\n"
            << "Q for 2.0% tolerance across all models: "
            << metrics::Table::Num(q20.micros(), 0) << " us (paper: ~1620 us)\n"
            << "Expected shape: overhead decreases with Q for every model.\n";
  return 0;
}
