// Reproduces Figure 8: the Overhead-Q curves for the seven DNNs — measured
// overhead of Olympian (two instances, fair sharing) vs stock TF-Serving,
// as a function of the quantum Q. Overhead decreases as Q grows.
//
// Each model's curve is an independent profile + sweep of Q runs, so the
// seven curves compute in parallel via SweepRunner (one ProfileCache per
// case — the cache is not thread-safe). Curve points land in
// BENCH_fig08_overhead_q.json.

#include <iostream>
#include <memory>

#include "harness.h"
#include "models/model_zoo.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Overhead-Q curves for the seven DNNs", "Figure 8");

  const auto specs = models::AllModels();
  std::vector<std::unique_ptr<core::ModelProfile>> curves(specs.size());

  bench::SweepRunner sweep("fig08_overhead_q");
  for (std::size_t m = 0; m < specs.size(); ++m) {
    sweep.Add(specs[m].name, [m, &specs, &curves](bench::SweepCase& out) {
      bench::ProfileCache profiles;  // per-case: profiling runs simulations
      const auto& p =
          profiles.GetWithCurve(specs[m].name, specs[m].paper_batch);
      curves[m] = std::make_unique<core::ModelProfile>(p);
      for (const auto& [q, overhead] : p.overhead_q) {
        out.Set("overhead_at_q" + std::to_string(q.micros()), overhead);
      }
    });
  }
  sweep.RunAll();

  std::vector<std::string> headers{"Q (us)"};
  for (const auto& spec : specs) headers.push_back(spec.name);
  metrics::Table t(std::move(headers));

  std::vector<const core::ModelProfile*> all;
  for (const auto& c : curves) all.push_back(c.get());

  const std::size_t points = all.front()->overhead_q.size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{
        metrics::Table::Num(all.front()->overhead_q[i].first.micros(), 0)};
    for (const auto* p : all) {
      row.push_back(metrics::Table::Pct(p->overhead_q[i].second));
    }
    t.AddRow(std::move(row));
  }
  t.Print(std::cout);

  const auto q25 = core::Profiler::SelectQ(all, 0.025);
  const auto q20 = core::Profiler::SelectQ(all, 0.020);
  std::cout << "\nQ for 2.5% tolerance across all models: "
            << metrics::Table::Num(q25.micros(), 0) << " us (paper: ~1190 us)\n"
            << "Q for 2.0% tolerance across all models: "
            << metrics::Table::Num(q20.micros(), 0) << " us (paper: ~1620 us)\n"
            << "Expected shape: overhead decreases with Q for every model.\n";
  return 0;
}
