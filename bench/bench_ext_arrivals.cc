// Extension (paper future work, §7: "more realistic workloads"): open-loop
// Poisson request arrivals instead of the paper's back-to-back batches.
// Measures per-request latency percentiles across clients under stock
// TF-Serving vs Olympian fair sharing, at two load levels.
//
// The paper's motivation — latency predictability for user-facing services —
// shows up here as the spread of per-client p95 latencies.
//
// The four (load, system) runs are independent and fan out across OS
// threads via SweepRunner; percentiles land in BENCH_ext_arrivals.json.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

struct LoadResult {
  double p50 = 0, p95 = 0, max_p95 = 0, min_p95 = 0;
};

LoadResult Summarize(const std::vector<serving::ClientResult>& results) {
  metrics::Series all;
  metrics::Series per_client_p95;
  for (const auto& r : results) {
    metrics::Series mine;
    for (double v : r.request_latency_ms) {
      all.Add(v);
      mine.Add(v);
    }
    if (!mine.empty()) per_client_p95.Add(mine.Percentile(95));
  }
  return LoadResult{all.Percentile(50), all.Percentile(95),
                    per_client_p95.Max(), per_client_p95.Min()};
}

}  // namespace

int main() {
  bench::PrintHeader("Open-loop Poisson arrivals: latency percentiles",
                     "extension of the paper's workload model");

  const int kGaps[] = {80, 62};  // 8.0s (light), 6.2s (near saturation)
  bench::SweepRunner sweep("ext_arrivals");
  for (int gap_s_x10 : kGaps) {
    const auto gap = sim::Duration::Seconds(gap_s_x10 / 10.0);
    const std::vector<serving::ClientSpec> clients(
        10, {.model = "inception-v4",
             .batch = 100,
             .num_batches = 10,
             .mean_interarrival = gap});
    const std::string suffix = metrics::Table::Num(gap.seconds(), 1) + "s";

    auto report = [](bench::SweepCase& out, const LoadResult& r) {
      out.Set("p50_ms", r.p50);
      out.Set("p95_ms", r.p95);
      out.Set("per_client_p95_min_ms", r.min_p95);
      out.Set("per_client_p95_max_ms", r.max_p95);
    };
    sweep.Add("tf-serving-gap-" + suffix,
              [clients, report](bench::SweepCase& out) {
                serving::ServerOptions opts;
                opts.seed = 67;
                const auto run = bench::RunBaseline(opts, clients);
                report(out, Summarize(run.clients));
                out.RecordStatuses(run.clients);
              });
    sweep.Add("olympian-fair-gap-" + suffix,
              [clients, report](bench::SweepCase& out) {
                serving::ServerOptions opts;
                opts.seed = 67;
                bench::ProfileCache profiles;
                const auto q = sim::Duration::Micros(1600);
                const auto run =
                    bench::RunOlympian(opts, clients, "fair", q, profiles);
                report(out, Summarize(run.clients));
                out.RecordStatuses(run.clients);
              });
  }
  const auto& results = sweep.RunAll();

  metrics::Table t({"Load (mean interarrival)", "System", "p50 (ms)",
                    "p95 (ms)", "per-client p95 range (ms)"});
  std::size_t idx = 0;
  for (int gap_s_x10 : kGaps) {
    const std::string load =
        metrics::Table::Num(gap_s_x10 / 10.0, 1) + " s";
    for (const char* system : {"TF-Serving", "Olympian fair"}) {
      const auto& m = results[idx++].metrics;
      t.AddRow({load, system, metrics::Table::Num(m[0].second, 0),
                metrics::Table::Num(m[1].second, 0),
                metrics::Table::Num(m[2].second, 0) + " - " +
                    metrics::Table::Num(m[3].second, 0)});
    }
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: Olympian trims the aggregate p95 and lifts\n"
               "the per-client floor (no client is systematically favoured\n"
               "by the driver), at a small cost in median latency from\n"
               "time-slicing. Burst queueing still dominates the extreme\n"
               "tail — fairness cannot remove load spikes.\n";
  return 0;
}
