// Extension (paper future work, §7: "more realistic workloads"): open-loop
// Poisson request arrivals instead of the paper's back-to-back batches.
// Measures per-request latency percentiles across clients under stock
// TF-Serving vs Olympian fair sharing, at two load levels.
//
// The paper's motivation — latency predictability for user-facing services —
// shows up here as the spread of per-client p95 latencies.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

struct LoadResult {
  double p50 = 0, p95 = 0, max_p95 = 0, min_p95 = 0;
};

LoadResult Summarize(const std::vector<serving::ClientResult>& results) {
  metrics::Series all;
  metrics::Series per_client_p95;
  for (const auto& r : results) {
    metrics::Series mine;
    for (double v : r.request_latency_ms) {
      all.Add(v);
      mine.Add(v);
    }
    if (!mine.empty()) per_client_p95.Add(mine.Percentile(95));
  }
  return LoadResult{all.Percentile(50), all.Percentile(95),
                    per_client_p95.Max(), per_client_p95.Min()};
}

}  // namespace

int main() {
  bench::PrintHeader("Open-loop Poisson arrivals: latency percentiles",
                     "extension of the paper's workload model");

  bench::ProfileCache profiles;
  const auto q = sim::Duration::Micros(1600);

  metrics::Table t({"Load (mean interarrival)", "System", "p50 (ms)",
                    "p95 (ms)", "per-client p95 range (ms)"});

  for (int gap_s_x10 : {80, 62}) {  // 8.0s (light), 6.2s (near saturation)
    const auto gap = sim::Duration::Seconds(gap_s_x10 / 10.0);
    std::vector<serving::ClientSpec> clients(
        10, {.model = "inception-v4",
             .batch = 100,
             .num_batches = 10,
             .mean_interarrival = gap});

    serving::ServerOptions opts;
    opts.seed = 67;
    const auto base = bench::RunBaseline(opts, clients);
    const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);

    const auto b = Summarize(base.clients);
    const auto o = Summarize(oly.clients);
    const std::string load = metrics::Table::Num(gap.seconds(), 1) + " s";
    t.AddRow({load, "TF-Serving", metrics::Table::Num(b.p50, 0),
              metrics::Table::Num(b.p95, 0),
              metrics::Table::Num(b.min_p95, 0) + " - " +
                  metrics::Table::Num(b.max_p95, 0)});
    t.AddRow({load, "Olympian fair", metrics::Table::Num(o.p50, 0),
              metrics::Table::Num(o.p95, 0),
              metrics::Table::Num(o.min_p95, 0) + " - " +
                  metrics::Table::Num(o.max_p95, 0)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: Olympian trims the aggregate p95 and lifts\n"
               "the per-client floor (no client is systematically favoured\n"
               "by the driver), at a small cost in median latency from\n"
               "time-slicing. Burst queueing still dominates the extreme\n"
               "tail — fairness cannot remove load spikes.\n";
  return 0;
}
