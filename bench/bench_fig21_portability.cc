// Reproduces Figure 21: portability — the Figure-11 fair-sharing experiment
// re-run unchanged on a different GPU (Titan X Pascal instead of the GTX
// 1080 Ti). Absolute times shift with the hardware; fairness is preserved.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("Fair sharing on a different GPU (Titan X)", "Figure 21");

  // Profiles are re-taken on the target device — exactly what an operator
  // deploying to new hardware does; no code changes anywhere.
  core::ProfilerOptions popts;
  popts.server.gpu.spec = gpusim::GpuSpec::TitanXPascal();
  bench::ProfileCache profiles{popts};
  const auto& prof = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&prof}, 0.025);

  serving::ServerOptions opts;
  opts.gpu.spec = gpusim::GpuSpec::TitanXPascal();
  opts.seed = 41;
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);
  const auto base = bench::RunBaseline(opts, clients);
  const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);

  metrics::Table t({"Client id", "TF-Serving (s)", "Olympian fair (s)"});
  metrics::Series of;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    t.AddRow({std::to_string(i), bench::FmtSeconds(base.clients[i].finish_time),
              bench::FmtSeconds(oly.clients[i].finish_time)});
    of.Add(oly.clients[i].finish_time.seconds());
  }
  t.Print(std::cout);
  std::cout << "\nOlympian finish-time CV on Titan X: "
            << metrics::Table::Pct(of.Cv())
            << "  (device: " << opts.gpu.spec.name << ", clock scale "
            << metrics::Table::Num(opts.gpu.spec.clock_scale, 2) << ")\n"
            << "Expected shape: total times differ from Figure 11 (slower\n"
               "device) but all ten clients still finish together.\n";
  return 0;
}
