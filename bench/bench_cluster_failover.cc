// Cluster availability under server crashes and network partitions, with
// the front-end router's cross-server failover on vs off.
//
// Three single-GPU servers, six open-loop Poisson clients (two homed per
// server), and an explicit server-level fault schedule: two staggered
// process crashes plus an inbound partition. With failover the router
// detects each incident (probe heartbeats + consecutive errors), re-routes
// victims to survivors without spending their retry budget, and readmits
// the server after the warm-up hand-shake; the static baseline pins every
// client to its home server and degrades in proportion to the faulted
// share of demand.
//
// Headline gate (CI cluster-chaos-smoke): availability >= 99% with
// failover under the full crash+partition sweep, router MTTR p95 bounded,
// and a same-seed determinism repeat that must be bit-identical. Scalars
// land in BENCH_cluster_failover.json; the router-side per-incident MTTR
// distribution is embedded under "histograms".

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "serving/cluster.h"

using namespace olympian;

namespace {

sim::TimePoint At(double ms) {
  return sim::TimePoint() + sim::Duration::Millis(ms);
}

constexpr int kClients = 6;
constexpr int kRequests = 15;

// Everything a determinism repeat must reproduce bit-for-bit.
struct ClusterRun {
  std::vector<serving::ClusterClientResult> clients;
  metrics::RouterCounters counters;
  std::vector<sim::Duration> mttr_incidents;
  sim::Duration makespan;
};

ClusterRun RunCluster(bool failover, bool crash, bool partition,
                      bench::SweepCase* record_engine = nullptr,
                      metrics::PhaseCollector* phases = nullptr) {
  serving::ClusterOptions opts;
  opts.num_servers = 3;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 29;
  opts.router.failover = failover;
  opts.phases = phases;
  // A request is ~140ms at this sim's scale; windows span several requests
  // and never overlap on the same server, so a survivor always exists.
  if (crash) {
    opts.faults.Crash(At(400), sim::Duration::Millis(600), /*server=*/0);
    opts.faults.Crash(At(1800), sim::Duration::Millis(500), /*server=*/1);
  }
  if (partition) {
    opts.faults.Partition(At(900), sim::Duration::Millis(700), /*server=*/2,
                          fault::PartitionDirection::kToServer);
  }
  serving::Cluster cluster(opts);

  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 10;
  c.request.num_batches = kRequests;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = 100.0;
  ClusterRun run;
  run.clients =
      cluster.Run(std::vector<serving::ClusterClientSpec>(kClients, c));
  run.counters = cluster.counters();
  run.mttr_incidents = cluster.router().mttr_incidents();
  run.makespan = cluster.makespan();
  if (record_engine != nullptr) record_engine->RecordEngine(cluster.engine());
  return run;
}

double Metric(const bench::SweepCase& r, const std::string& key) {
  for (const auto& [k, v] : r.metrics) {
    if (k == key) return v;
  }
  return 0.0;
}

bool SameRun(const ClusterRun& a, const ClusterRun& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    if (a.clients[i].finish_time != b.clients[i].finish_time) return false;
    if (a.clients[i].request_latency_ms != b.clients[i].request_latency_ms) {
      return false;
    }
    if (a.clients[i].request_status != b.clients[i].request_status) {
      return false;
    }
  }
  if (a.mttr_incidents != b.mttr_incidents) return false;
  if (a.makespan != b.makespan) return false;
  for (const auto& f : metrics::RouterCounters::Fields()) {
    if (a.counters.*(f.member) != b.counters.*(f.member)) return false;
  }
  return true;
}

double Availability(const ClusterRun& run) {
  int total = 0, served = 0;
  for (const auto& r : run.clients) {
    total += static_cast<int>(r.request_status.size());
    served += r.requests_completed;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(served) / static_cast<double>(total);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Cluster availability under crashes + partitions: router failover",
      "robustness extension");

  struct Case {
    const char* name;
    bool failover;
    bool crash;
    bool partition;
  };
  const Case kCases[] = {
      {"no-fault-failover", true, false, false},
      {"crash-static", false, true, false},
      {"crash-failover", true, true, false},
      {"chaos-static", false, true, true},
      {"chaos-failover", true, true, true},
  };

  bench::SweepRunner sweep("cluster_failover");
  for (const Case& cfg : kCases) {
    sweep.Add(cfg.name, [cfg](bench::SweepCase& out) {
      // Latency anatomy: every request charges its lifetime to phases; the
      // per-(server, model) blame table rides into BENCH_*.json as "blame".
      auto phases = std::make_shared<metrics::PhaseCollector>(
          metrics::PhaseCollector::Options{.slo_ms = 250.0});
      const ClusterRun run = RunCluster(cfg.failover, cfg.crash,
                                        cfg.partition, &out, phases.get());
      out.phases = phases;
      // The accounting identity (phase sum == end-to-end latency, bit-exact
      // in virtual time) must hold for every request, faults and all.
      out.Set("phase_mismatches", static_cast<double>(phases->mismatches()));
      out.Set("availability", Availability(run));

      metrics::Series latency;
      for (const auto& r : run.clients) {
        for (const double ms : r.request_latency_ms) latency.Add(ms);
      }
      out.Set("p99_ms", latency.Percentile(99));
      out.Set("makespan_s", run.makespan.seconds());
      const auto& c = run.counters;
      out.Set("failed_over", static_cast<double>(c.requests_failed_over));
      out.Set("requests_failed",
              static_cast<double>(c.requests_failed +
                                  c.requests_rejected_no_server));
      out.Set("lost_to_server", static_cast<double>(c.requests_lost_to_server));
      out.Set("down_events", static_cast<double>(c.server_down_events));
      out.Set("readmissions", static_cast<double>(c.server_readmissions));

      // Router-side per-incident MTTR (down-mark to readmission, detection
      // latency included) as a distribution.
      metrics::MetricRegistry::Histogram mttr_hist;
      for (const sim::Duration d : run.mttr_incidents) {
        mttr_hist.Observe(d.millis());
      }
      out.Set("mttr_p95_ms",
              mttr_hist.count() > 0 ? mttr_hist.Quantile(0.95) : 0.0);
      out.histograms = std::make_shared<bench::Json>(
          bench::Json::Object().Set("router_mttr_ms",
                                    bench::HistogramJson(mttr_hist)));

      // The chaos-failover headline additionally proves determinism: the
      // same seed must replay bit-identically (statuses, latencies,
      // per-incident MTTRs, every router counter).
      if (cfg.failover && cfg.crash && cfg.partition) {
        const ClusterRun repeat =
            RunCluster(cfg.failover, cfg.crash, cfg.partition);
        out.Set("determinism_ok", SameRun(run, repeat) ? 1.0 : 0.0);
      }
    });
  }

  const auto& results = sweep.RunAll();
  metrics::Table t({"Case", "Availability", "p99 (ms)", "Failed over",
                    "Failed", "Down events", "MTTR p95 (ms)"});
  for (const auto& r : results) {
    t.AddRow({r.name, metrics::Table::Pct(Metric(r, "availability")),
              metrics::Table::Num(Metric(r, "p99_ms"), 0),
              metrics::Table::Num(Metric(r, "failed_over"), 0),
              metrics::Table::Num(Metric(r, "requests_failed"), 0),
              metrics::Table::Num(Metric(r, "down_events"), 0),
              metrics::Table::Num(Metric(r, "mttr_p95_ms"), 0)});
    if (std::string(r.name).find("failover") != std::string::npos &&
        Metric(r, "availability") < 0.99) {
      std::cout << "WARNING: " << r.name << " availability "
                << Metric(r, "availability") << " below the 99% gate\n";
    }
  }
  t.Print(std::cout);
  std::cout << "\n3 single-GPU servers, 6 Poisson clients (2 homed per\n"
               "server), 15 requests each. Faults: 600ms crash on server 0\n"
               "at t=400ms, 500ms crash on server 1 at t=1.8s, 700ms inbound\n"
               "partition on server 2 at t=900ms. Availability = fraction of\n"
               "requests ending kOk or kFailedRetried.\n";
  return 0;
}
